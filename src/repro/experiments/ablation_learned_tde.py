"""Ablation: rule-based TDE vs the §7 learned (rule-free) detector.

Trains :class:`~repro.core.tde.learned_detector.LearnedThrottleDetector`
by shadowing the rule engine over a mix of deployments, then scores both
on held-out windows. Expected shape: the learned detector matches the
rule engine on classes whose evidence lives in the delta metrics (memory:
temp files, backend buffers; bgwriter: checkpoint counts and write
latency) and trails on async/planner, whose rule-based signal comes from
active EXPLAIN probing that delta metrics do not carry — which is why the
paper's TDE probes at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.core.tde.learned_detector import LabelledWindow, LearnedThrottleDetector
from repro.dbsim.engine import SimulatedDatabase
from repro.tuners.repository import WorkloadRepository
from repro.workloads.adulterated import AdulteratedTPCCWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["LearnedTDEResult", "run"]


@dataclass(frozen=True)
class LearnedTDEResult:
    """Held-out agreement between learned and rule-based detection."""

    train_windows: int
    test_windows: int
    accuracy_by_class: dict[str, float]
    final_loss: float


def _scenario_windows(n_windows: int, seed: int) -> list[LabelledWindow]:
    """Labelled windows from three contrasting deployments."""
    windows: list[LabelledWindow] = []
    scenarios = (
        # (workload factory, data_gb, config tweaks)
        (lambda s: AdulteratedTPCCWorkload(0.8, data_size_gb=21.0, seed=s), 21.0, {}),
        (lambda s: TPCCWorkload(rps=3300.0, data_size_gb=26.0, seed=s), 26.0, {}),
        (
            lambda s: YCSBWorkload(rps=300.0, data_size_gb=2.0, seed=s),
            2.0,
            {"shared_buffers": 2048, "work_mem": 512},
        ),
    )
    for index, (factory, data_gb, tweaks) in enumerate(scenarios):
        db = SimulatedDatabase(
            "postgres", "m4.xlarge", data_gb, seed=seed + index
        )
        if tweaks:
            db.config = db.config.with_values(tweaks)
        tde = ThrottlingDetectionEngine(
            "svc", db, WorkloadRepository(), seed=seed + 10 + index
        )
        workload = factory(seed + 20 + index)
        for _ in range(n_windows):
            result = db.run(workload.batch(30.0, start_time_s=db.clock_s))
            windows.append(LearnedThrottleDetector.shadow(tde, result))
    return windows


def run(
    train_windows_per_scenario: int = 10,
    test_windows_per_scenario: int = 6,
    seed: int = 0,
) -> LearnedTDEResult:
    """Train by imitation, score on held-out windows."""
    train = _scenario_windows(train_windows_per_scenario, seed)
    test = _scenario_windows(test_windows_per_scenario, seed + 100)
    detector = LearnedThrottleDetector(seed=seed + 200)
    loss = detector.fit(train, epochs=250)
    return LearnedTDEResult(
        train_windows=len(train),
        test_windows=len(test),
        accuracy_by_class=detector.score(test),
        final_loss=loss,
    )
