"""Trace harness: run an experiment under a live recorder, export it.

This is the engine behind the ``repro trace`` CLI subcommand and the
golden-trace tests. It wires one :class:`~repro.obs.trace.TraceRecorder`
into an existing experiment driver — the quick chaos profile or a small
fig09-style fleet run — and packages the deterministic artifacts: the
canonical JSONL trace, the Chrome/Perfetto trace-event JSON, the span
profile table, the Prometheus rendering of the metrics registry and a
one-screen stdout summary with the trace's SHA-256 digest.

Every artifact except host-time profile columns is byte-identical for
identical arguments; the digest in the summary is what the golden tests
pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cloud.metrics_export import (
    describe_counter_families,
    render_registry,
)
from repro.core.director.safety import SAFETY_METRIC_FAMILIES
from repro.tuners.knob_selection import KNOBSELECT_METRIC_FAMILIES
from repro.tuners.surrogate import SURROGATE_METRIC_FAMILIES
from repro.experiments import chaos_recovery
from repro.experiments import fig09_requests_per_minute as fig09
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.profile import profile, render_profile
from repro.obs.trace import TraceRecorder
from repro.parallel.stats import SessionStats, render_session_stats

__all__ = ["EXPERIMENTS", "TraceArtifacts", "run"]

#: Experiments the harness can trace.
EXPERIMENTS = ("chaos", "fleet")


@dataclass
class TraceArtifacts:
    """Everything one traced run produced."""

    experiment: str
    seed: int
    headline: str
    jsonl: str
    chrome_json: str
    profile_table: str
    metrics_text: str
    recorder: TraceRecorder
    #: Executor pipe-seam accounting (fleet experiment only): bytes
    #: serialized per window and the step/serialize/reduce time split.
    #: Rendered for ``--profile``; never part of the digest-pinned trace.
    pipe_table: str = ""

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical JSONL trace (the golden pin)."""
        return hashlib.sha256(self.jsonl.encode()).hexdigest()

    def summary(self) -> str:
        """Deterministic one-screen stdout summary."""
        recorder = self.recorder
        metric_samples = sum(1 for _ in recorder.metrics.samples())
        lines = [
            f"trace: experiment={self.experiment} seed={self.seed}",
            self.headline,
            (
                f"recorded: spans={len(recorder.spans)} "
                f"events={len(recorder.events)} "
                f"metric_samples={metric_samples}"
            ),
            f"jsonl sha256: {self.digest}",
        ]
        return "\n".join(lines) + "\n"


def run(
    experiment: str = "chaos",
    seed: int = 0,
    host_time: bool = False,
    fleet_size: int = 3,
    hours: float = 1.0,
    warmup_hours: float = 0.5,
    workers: int = 1,
    surrogate: bool = False,
    knob_select: bool = False,
) -> TraceArtifacts:
    """Trace one experiment run; see the module docstring.

    ``experiment="chaos"`` traces the faulted landscape of a quick chaos
    run; ``"fleet"`` traces a small fig09-style live fleet (sized by
    *fleet_size*/*hours*/*warmup_hours*). ``host_time`` additionally
    stamps spans with ``perf_counter`` deltas for the profile table —
    host times never reach the JSONL/Chrome exports, which stay
    byte-identical either way. *workers* selects the experiment's
    parallel backend; every artifact is byte-identical across worker
    counts. *surrogate* arms candidate screening in the traced
    experiment; with the default off the trace bytes are identical to
    builds without the surrogate tier. *knob_select* arms dynamic
    per-workload knob selection the same way (default off, trace bytes
    unchanged).
    """
    recorder = TraceRecorder(host_time=host_time)
    # Declare the safety-governor, surrogate and knob-selection
    # vocabularies up front: the families show in the Prometheus
    # rendering (`repro trace --metrics`) even for runs that never arm
    # them, and described-but-empty families add no JSONL samples, so
    # golden digests are untouched.
    describe_counter_families(recorder.metrics, SAFETY_METRIC_FAMILIES)
    describe_counter_families(recorder.metrics, SURROGATE_METRIC_FAMILIES)
    describe_counter_families(recorder.metrics, KNOBSELECT_METRIC_FAMILIES)
    session_stats: SessionStats | None = None
    if experiment == "chaos":
        report = chaos_recovery.run(
            seed=seed, quick=True, recorder=recorder, workers=workers,
            surrogate=surrogate,
            knob_select=knob_select,
        )
        recovery = (
            f"window {report.recovery_window:02d}"
            if report.recovery_window is not None
            else "none"
        )
        headline = (
            f"chaos quick: windows={report.windows} "
            f"delivered={sum(report.delivered.values())} "
            f"breaker_trips={report.breaker_trips} "
            f"fallbacks={report.fallbacks_served} recovery={recovery}"
        )
    elif experiment == "fleet":
        session_stats = SessionStats()
        result = fig09.run(
            fleet_size=fleet_size,
            hours=hours,
            warmup_hours=warmup_hours,
            seed=seed,
            recorder=recorder,
            workers=workers,
            stats=session_stats,
            surrogate=surrogate,
            knob_select=knob_select,
        )
        headline = (
            f"fleet: size={fleet_size} hours={hours:g} "
            f"tde_total={result.tde_total} "
            f"tde_mean_rpm={result.tde_mean_rpm():.3f}"
        )
    else:
        raise ValueError(
            f"unknown experiment {experiment!r}; pick from {EXPERIMENTS}"
        )

    meta = {"experiment": experiment, "seed": seed}
    artifacts = TraceArtifacts(
        experiment=experiment,
        seed=seed,
        headline=headline,
        jsonl=to_jsonl(recorder, meta),
        chrome_json=to_chrome_trace(recorder, meta),
        profile_table=render_profile(profile(recorder)),
        metrics_text=render_registry(recorder.metrics),
        recorder=recorder,
        pipe_table=(
            render_session_stats(session_stats) if session_stats else ""
        ),
    )
    return artifacts
