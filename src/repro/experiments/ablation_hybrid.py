"""Ablation: §2.1's hybrid tuner vs its BO and RL members.

Measures the §1 trade-off directly: per-recommendation compute cost
(which bounds how many service instances one tuner deployment can serve
at a 5-minute period) against the throughput the tuned database reaches
after a fixed number of recommendations. Expected shape: BO best quality
per recommendation but most expensive; RL cheapest but noisiest; the
hybrid lands between on cost while staying near the BO's quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TrainingSample, Tuner, TuningRequest
from repro.tuners.cdbtune import CDBTuneTuner
from repro.tuners.hybrid import HybridTuner
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["TunerProfile", "run"]

_PERIOD_S = 300.0  # the paper's 5-minute monitoring period


@dataclass(frozen=True)
class TunerProfile:
    """One tuner's cost/quality/capacity profile."""

    name: str
    recommendation_cost_s: float
    final_tps: float
    best_tps: float

    @property
    def instances_per_deployment(self) -> float:
        """§1's capacity bound: instances one deployment serves at 5 min."""
        return _PERIOD_S / max(self.recommendation_cost_s, 1e-9)


def _closed_loop(tuner: Tuner, iterations: int, seed: int) -> tuple[float, float]:
    db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=seed)
    workload = TPCCWorkload(rps=12_000.0, seed=seed + 1)
    measured: list[float] = []
    for _ in range(iterations):
        result = db.run(workload.batch(20.0, start_time_s=db.clock_s))
        tuner.observe(
            TrainingSample("tpcc-live", db.config, result.metrics, db.clock_s)
        )
        recommendation = tuner.recommend(
            TuningRequest("svc", "tpcc-live", db.config, result.metrics)
        )
        db.apply_config(
            recommendation.config.fitted_to_budget(
                db.vm.db_memory_limit_mb, db.active_connections
            ),
            mode="restart",
        )
        db.run(workload.batch(20.0, start_time_s=db.clock_s))
        db.run(workload.batch(20.0, start_time_s=db.clock_s))
        measured.append(
            db.run(workload.batch(20.0, start_time_s=db.clock_s)).throughput
        )
    return measured[-1], max(measured)


def run(iterations: int = 6, seed: int = 0) -> list[TunerProfile]:
    """Profile BO, RL and hybrid tuners on the same task."""
    catalog = postgres_catalog()
    profiles: list[TunerProfile] = []
    for name in ("ottertune", "cdbtune", "hybrid"):
        repository = offline_train(
            catalog, [TPCCWorkload(rps=12_000.0, seed=seed + 1)],
            n_configs=12, seed=seed + 2,
        )
        # Model the paper's production repository scale for the cost side.
        if name == "ottertune":
            tuner: Tuner = OtterTuneTuner(
                catalog, repository, memory_limit_mb=6553.6, seed=seed + 3
            )
        elif name == "cdbtune":
            tuner = CDBTuneTuner(catalog, memory_limit_mb=6553.6, seed=seed + 3)
        else:
            tuner = HybridTuner(
                catalog, repository, bo_every=4,
                memory_limit_mb=6553.6, seed=seed + 3,
            )
        final_tps, best_tps = _closed_loop(tuner, iterations, seed + 10)
        if name in ("ottertune", "hybrid"):
            # Report the cost at the paper's production repository size
            # (~2000 samples), not this toy session's.
            bo = tuner if name == "ottertune" else tuner.bo  # type: ignore[union-attr]
            bo._last_train_size = 2000
        cost = tuner.recommendation_cost_s()
        profiles.append(
            TunerProfile(
                name=name,
                recommendation_cost_s=cost,
                final_tps=final_tps,
                best_tps=best_tps,
            )
        )
    return profiles
