"""Fig. 5 — disk write latency, TPC-C under default vs tuned knobs.

The paper runs TPC-C on PostgreSQL for ~20 minutes with default knob
values and then with optimal values: the default trace shows high latency
with checkpoint-induced peaks, the tuned trace sits flat around ~6.5 ms
average write latency (their hardware). The tuned trace's mean becomes the
baseline the background-writer detector uses (§3.2). Expected shape: the
tuned series is lower on average and has smaller peaks; absolute numbers
depend on the device profile, not the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.monitoring import MonitoringAgent
from repro.common.timeseries import TimeSeries
from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import postgres_catalog
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["DiskLatencyRun", "run", "tuned_config_values"]


def tuned_config_values() -> dict[str, float]:
    """A hand-tuned PostgreSQL config for write-heavy TPC-C.

    Large buffer, patient checkpoints spread wide, and an aggressive
    background writer — the shape a trained tuner converges to on this
    workload (see the Fig. 12 pipeline for learned equivalents).
    """
    return {
        "shared_buffers": 4096,
        "checkpoint_timeout": 900,
        "max_wal_size": 8192,
        "checkpoint_completion_target": 0.9,
        "bgwriter_delay": 50,
        "bgwriter_lru_maxpages": 1000,
    }


@dataclass
class DiskLatencyRun:
    """Write-latency traces for the two configurations."""

    default_latency: TimeSeries
    tuned_latency: TimeSeries

    @property
    def default_mean_ms(self) -> float:
        return self.default_latency.mean()

    @property
    def tuned_mean_ms(self) -> float:
        return self.tuned_latency.mean()


def run(
    duration_s: float = 1200.0,
    window_s: float = 60.0,
    rps: float = 3300.0,
    seed: int = 0,
) -> DiskLatencyRun:
    """Execute both 20-minute TPC-C sessions and collect latency traces."""
    traces: list[TimeSeries] = []
    for label, overrides in (("default", {}), ("tuned", tuned_config_values())):
        db = SimulatedDatabase("postgres", "m4.large", 26.0, seed=seed)
        if overrides:
            db.apply_config(db.config.with_values(overrides), mode="restart")
            db._pending_stall_s = 0.0  # measure steady state, not the restart
        workload = TPCCWorkload(rps=rps, seed=seed + 1)
        agent = MonitoringAgent(label)
        elapsed = 0.0
        while elapsed < duration_s:
            agent.ingest(db.run(workload.batch(window_s, start_time_s=db.clock_s)))
            elapsed += window_s
        traces.append(agent.write_latency)
    return DiskLatencyRun(default_latency=traces[0], tuned_latency=traces[1])
