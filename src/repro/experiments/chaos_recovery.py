"""Chaos experiment: inject control-plane faults, measure recovery.

Two identical AutoDBaaS landscapes run the same seeded workloads window
by window. The *baseline* landscape's fault injector is disabled (every
shim is a transparent pass-through); the *faulted* landscape delivers a
:class:`~repro.faults.plan.FaultPlan` compiled from the same seed —
tuner outages, slow recommendations, transient apply failures, crashes
mid-apply, telemetry gaps and disk degradation — all confined to an
early fault phase so the tail of the run measures recovery.

The report answers the two robustness questions:

- **time to recovery** — how many simulated seconds after the last fault
  clears until fleet throughput is back to >= 90% of the fault-free run;
- **throughput retention** — the faulted fleet's total throughput as a
  fraction of the baseline's, overall and post-recovery.

Everything — workloads, tuner draws, fault schedule — derives from one
seed through :func:`~repro.common.rng.make_rng`, so the rendered report
is byte-identical across runs with the same arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.provisioner import Provisioner
from repro.common.recording import Recorder
from repro.core.apply.adapters import adapter_for
from repro.core.apply.dfa import DataFederationAgent
from repro.core.apply.reconciler import Reconciler
from repro.core.director.breaker import BreakerPolicy
from repro.core.director.safety import GovernorPolicy
from repro.core.service import AutoDBaaS
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.faults.injectors import (
    FaultInjector,
    FaultyAdapter,
    FaultyMonitoringAgent,
    FaultyTuner,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.obs.trace import TraceRecorder
from repro.parallel import FleetExecutor
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.surrogate import SurrogatePolicy
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["STANDARD_KINDS", "WindowPoint", "ChaosReport", "run"]

#: Recovery bar: the faulted fleet must regain this fraction of the
#: fault-free fleet's window throughput.
RECOVERY_THRESHOLD = 0.9

#: Tuner deployments behind the balancer (two, so an outage has a
#: failover path before the breaker forces last-known-good fallback).
_TUNER_COUNT = 2

#: The original six-kind chaos taxonomy. The standard profile compiles
#: exactly these — pinned explicitly so that adding new fault kinds to
#: the enum (``bad_recommendation`` drives the adversarial profile, not
#: this one) never perturbs the standard plan's seeded draws.
STANDARD_KINDS: tuple[FaultKind, ...] = (
    FaultKind.TUNER_OUTAGE,
    FaultKind.SLOW_RECOMMENDATION,
    FaultKind.APPLY_FAILURE,
    FaultKind.APPLY_CRASH,
    FaultKind.TELEMETRY_GAP,
    FaultKind.DISK_DEGRADATION,
)


@dataclass(frozen=True)
class WindowPoint:
    """Fleet throughput in one monitoring window, both landscapes."""

    window: int
    start_s: float
    baseline_tps: float
    faulted_tps: float
    active_faults: tuple[str, ...] = ()

    @property
    def ratio(self) -> float:
        return self.faulted_tps / self.baseline_tps if self.baseline_tps > 0 else 1.0


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    seed: int
    fleet_size: int
    windows: int
    window_s: float
    plan: FaultPlan
    points: list[WindowPoint] = field(default_factory=list)
    delivered: dict[str, int] = field(default_factory=dict)
    breaker_trips: int = 0
    fallbacks_served: int = 0
    telemetry_gap_windows: int = 0
    degraded_tde_windows: int = 0
    recovery_window: int | None = None

    @property
    def last_fault_end_s(self) -> float:
        return self.plan.last_fault_end_s()

    @property
    def time_to_recovery_s(self) -> float | None:
        """Seconds from the last fault clearing to the recovery window."""
        if self.recovery_window is None:
            return None
        return max(0.0, self.recovery_window * self.window_s - self.last_fault_end_s)

    @property
    def retention(self) -> float:
        """Faulted / baseline total throughput over the whole run."""
        baseline = sum(p.baseline_tps for p in self.points)
        faulted = sum(p.faulted_tps for p in self.points)
        return faulted / baseline if baseline > 0 else 1.0

    @property
    def post_recovery_retention(self) -> float:
        """Faulted / baseline throughput from the recovery window on."""
        if self.recovery_window is None:
            return 0.0
        tail = self.points[self.recovery_window :]
        baseline = sum(p.baseline_tps for p in tail)
        faulted = sum(p.faulted_tps for p in tail)
        return faulted / baseline if baseline > 0 else 1.0

    def render(self) -> str:
        """Fixed-format text report (byte-identical for a given seed)."""
        lines = [
            "chaos recovery report "
            f"(seed={self.seed} fleet={self.fleet_size} "
            f"windows={self.windows} window_s={self.window_s:.0f})",
            "",
            "scheduled faults:",
        ]
        for event in self.plan.events:
            lines.append(
                f"  {event.start_s:7.0f}s +{event.duration_s:6.0f}s  "
                f"{event.kind.value:<20s} {event.target:<10s} "
                f"x{event.magnitude:.2f}"
            )
        lines += ["", "  w      start_s  baseline_tps   faulted_tps  ratio  faults"]
        for p in self.points:
            faults = ",".join(p.active_faults) if p.active_faults else "-"
            lines.append(
                f"  {p.window:02d}  {p.start_s:9.0f}  {p.baseline_tps:12.1f}  "
                f"{p.faulted_tps:12.1f}  {p.ratio:5.3f}  {faults}"
            )
        delivered = " ".join(
            f"{kind}={count}" for kind, count in sorted(self.delivered.items())
        )
        lines += [
            "",
            f"delivered: {delivered if delivered else '-'}",
            (
                f"control plane: breaker_trips={self.breaker_trips} "
                f"fallbacks_served={self.fallbacks_served} "
                f"telemetry_gap_windows={self.telemetry_gap_windows} "
                f"degraded_tde_windows={self.degraded_tde_windows}"
            ),
            f"last fault clears: {self.last_fault_end_s:.0f}s",
        ]
        if self.recovery_window is None:
            lines.append("recovery: NOT RECOVERED within the run")
        else:
            lines.append(
                f"recovery: window {self.recovery_window:02d} "
                f"(+{self.time_to_recovery_s:.0f}s after last fault)"
            )
        lines.append(
            f"throughput retention: overall={self.retention:.3f} "
            f"post_recovery={self.post_recovery_retention:.3f}"
        )
        recovered = (
            self.recovery_window is not None
            and self.post_recovery_retention >= RECOVERY_THRESHOLD
        )
        lines.append(
            f"verdict: {'PASS' if recovered else 'FAIL'} "
            f"(post-recovery retention threshold {RECOVERY_THRESHOLD:.2f})"
        )
        return "\n".join(lines) + "\n"


@dataclass
class _Landscape:
    """One wired landscape plus the handles the harness reads back."""

    service: AutoDBaaS
    injector: FaultInjector
    monitors: dict[str, FaultyMonitoringAgent]


def _build_landscape(
    seed: int,
    fleet_size: int,
    window_s: float,
    injector: FaultInjector,
    offline_configs: int,
    recorder: Recorder | None = None,
    governor: GovernorPolicy | None = None,
    surrogate: SurrogatePolicy | None = None,
    selection: SelectionPolicy | None = None,
) -> _Landscape:
    """Build one landscape; identical inputs give identical landscapes.

    Baseline and faulted runs call this with equal arguments except the
    injector's ``enabled`` flag, so they share every RNG draw and differ
    only where faults are actually delivered. A *recorder* (the trace
    harness) observes this landscape's control plane; with None every
    seam keeps the no-op default and behaviour is byte-identical.
    A *governor* policy arms safe online tuning (the adversarial
    profile runs the same landscape with and without one). A
    *surrogate* policy arms candidate screening on the BO tuners
    (offered through the :class:`FaultyTuner` shims); a *selection*
    policy arms dynamic knob selection the same way.
    """
    if recorder is not None:
        injector.recorder = recorder
    catalog = postgres_catalog()
    repository = offline_train(
        catalog,
        [TPCCWorkload(rps=12_000.0, data_size_gb=30.0, seed=seed + 90)],
        n_configs=offline_configs,
        seed=seed + 91,
    )
    tuners = [
        FaultyTuner(
            OtterTuneTuner(
                catalog,
                repository,
                n_candidates=100,
                memory_limit_mb=None,  # repaired per-instance by the facade
                seed=seed + 40 + i,
            ),
            injector,
            f"tuner-{i:02d}",  # matches the facade's TunerInstance ids
            # Perturbation stream for delivered bad_recommendation events;
            # lazily derived, so plans without them draw nothing.
            seed=seed + 70 + i,
        )
        for i in range(_TUNER_COUNT)
    ]
    adapter = FaultyAdapter(adapter_for("postgres"), injector)
    monitors: dict[str, FaultyMonitoringAgent] = {}

    def monitoring_factory(instance_id: str) -> FaultyMonitoringAgent:
        agent = FaultyMonitoringAgent(instance_id, injector)
        monitors[instance_id] = agent
        return agent

    service = AutoDBaaS(
        tuners,
        repository,
        window_s=window_s,
        seed=seed,
        dfa=DataFederationAgent(adapter=adapter),
        monitoring_factory=monitoring_factory,
        recorder=recorder,
        governor=governor,
        surrogate=surrogate,
        selection=selection,
    )
    # Route the reconciler's restore path through the same (possibly
    # faulty) adapter, with a one-window watcher timeout so drift left by
    # crashes mid-apply is healed while the run can still observe it.
    service.reconciler = Reconciler(
        service.orchestrator,
        watcher_timeout_s=window_s,
        adapter=adapter,
        recorder=recorder,
        incident_log=service.governor,
    )
    # Trip fast and recover fast relative to the short horizon: two
    # consecutive routing failures open a tuner's breaker for two windows.
    service.director.breaker_policy = BreakerPolicy(
        failure_threshold=2, cooldown_s=2.0 * window_s
    )

    provisioner = Provisioner(seed=seed + 5)
    for i in range(fleet_size):
        deployment = provisioner.provision(
            plan="m4.xlarge", flavor="postgres", data_size_gb=30.0 + 2.0 * i
        )
        # Constant-rate TPC-C hot enough to keep the instance mildly
        # capacity-bound even when tuned: faults then show up as lost
        # throughput instead of disappearing into idle headroom.
        workload = TPCCWorkload(
            rps=6000.0,
            data_size_gb=deployment.service.master.data_size_gb,
            seed=seed + 10 + i,
        )
        service.attach(deployment, workload, policy="tde")
        adapter.register_service(
            deployment.instance_id, deployment.service.nodes
        )
    return _Landscape(service=service, injector=injector, monitors=monitors)


def _run_landscape(
    landscape: _Landscape, windows: int, window_s: float
) -> tuple[list[float], int]:
    """Advance a landscape; return per-window fleet tps + degraded count."""
    service = landscape.service
    injector = landscape.injector
    fleet_tps: list[float] = []
    degraded = 0
    for _ in range(windows):
        injector.advance(service.clock_s)
        for instance_id, managed in service.instances.items():
            event = injector.hit(FaultKind.DISK_DEGRADATION, instance_id)
            factor = event.magnitude if event is not None else 1.0
            for node in managed.deployment.service.nodes:
                node.set_disk_degradation(factor)
        outcomes = service.step()
        fleet_tps.append(
            sum(o.result.throughput for o in outcomes if o.result is not None)
        )
        degraded += sum(
            1
            for o in outcomes
            if o.tde_report is not None and o.tde_report.degraded
        )
    return fleet_tps, degraded


@dataclass(frozen=True)
class _LandscapeTask:
    """One landscape's build-and-run, picklable for :meth:`FleetExecutor.map`."""

    seed: int
    fleet_size: int
    windows: int
    window_s: float
    offline_configs: int
    plan: FaultPlan
    enabled: bool
    traced: bool = False
    host_time: bool = False
    #: Arm the safety governor (adversarial profile's governed arm).
    governor: GovernorPolicy | None = None
    #: Arm surrogate candidate screening on the BO tuners.
    surrogate: SurrogatePolicy | None = None
    #: Arm dynamic per-workload knob selection on the tuners.
    selection: SelectionPolicy | None = None


@dataclass
class _LandscapeOutcome:
    """What one landscape run hands back to the coordinator."""

    fleet_tps: list[float]
    degraded: int
    delivered: dict[str, int]
    breaker_trips: int
    fallbacks_served: int
    telemetry_gap_windows: int
    recorder: TraceRecorder | None = None
    #: Safety-governor counters (zero when no governor was armed).
    safety_clamps: int = 0
    canary_rejections: int = 0
    reverts: int = 0


def _run_landscape_task(task: _LandscapeTask) -> _LandscapeOutcome:
    """Build and run one landscape end to end (worker entry point)."""
    rec = TraceRecorder(host_time=task.host_time) if task.traced else None
    landscape = _build_landscape(
        task.seed,
        task.fleet_size,
        task.window_s,
        FaultInjector(task.plan, enabled=task.enabled),
        task.offline_configs,
        recorder=rec,
        governor=task.governor,
        surrogate=task.surrogate,
        selection=task.selection,
    )
    fleet_tps, degraded = _run_landscape(landscape, task.windows, task.window_s)
    governor = landscape.service.governor
    return _LandscapeOutcome(
        fleet_tps=fleet_tps,
        degraded=degraded,
        delivered={
            kind.value: landscape.injector.delivered(kind)
            for kind in FaultKind
            if landscape.injector.delivered(kind)
        },
        breaker_trips=landscape.service.director.breaker_trips(),
        fallbacks_served=landscape.service.director.fallbacks_served,
        telemetry_gap_windows=sum(
            m.gap_windows for m in landscape.monitors.values()
        ),
        recorder=rec,
        safety_clamps=governor.clamps if governor is not None else 0,
        canary_rejections=(
            governor.canary_rejections if governor is not None else 0
        ),
        reverts=governor.reverts if governor is not None else 0,
    )


def run(
    fleet_size: int = 3,
    windows: int = 28,
    window_s: float = 300.0,
    seed: int = 0,
    quick: bool = False,
    recorder: Recorder | None = None,
    workers: int = 1,
    start_method: str | None = None,
    surrogate: bool = False,
    knob_select: bool = False,
) -> ChaosReport:
    """Run the chaos experiment; see the module docstring.

    ``quick`` shrinks the fleet and the horizon for CI (the schedule
    still covers every fault kind and leaves a fault-free tail).
    *recorder* observes the **faulted** landscape only (the baseline
    landscape is the control — tracing it would double every span).
    The two landscapes are fully independent, so ``workers >= 2`` runs
    them concurrently; the faulted landscape records into a fragment
    recorder that is absorbed into *recorder* afterwards, which yields
    the same trace bytes as recording inline. *surrogate* arms
    candidate screening on **both** landscapes' tuners (keeping the
    baseline a fair control); default off, byte-identical output.
    *knob_select* arms dynamic knob selection on both landscapes the
    same way (default off, byte-identical output).
    """
    if quick:
        fleet_size = min(fleet_size, 2)
        windows = min(windows, 18)
    offline_configs = 6 if quick else 10
    service_ids = [f"svc-{i:04d}" for i in range(fleet_size)]
    tuner_ids = [f"tuner-{i:02d}" for i in range(_TUNER_COUNT)]
    # Fault phase confined to the first ~60% of the run; the tail is
    # fault-free and measures recovery.
    end_window = max(6, (windows * 3) // 5)
    plan = FaultPlan.compile(
        seed + 50,
        tuner_ids=tuner_ids,
        service_ids=service_ids,
        window_s=window_s,
        start_window=4,
        end_window=end_window,
        kinds=STANDARD_KINDS,
    )

    traced = isinstance(recorder, TraceRecorder)
    screen = SurrogatePolicy() if surrogate else None
    selection = SelectionPolicy() if knob_select else None
    executor = FleetExecutor(workers=workers, start_method=start_method)
    base_out, fault_out = executor.map(
        _run_landscape_task,
        [
            _LandscapeTask(
                seed, fleet_size, windows, window_s, offline_configs, plan,
                enabled=False,
                surrogate=screen,
                selection=selection,
            ),
            _LandscapeTask(
                seed, fleet_size, windows, window_s, offline_configs, plan,
                enabled=True,
                traced=traced,
                host_time=traced and recorder.host_time,  # type: ignore[union-attr]
                surrogate=screen,
                selection=selection,
            ),
        ],
    )
    if traced and fault_out.recorder is not None:
        assert isinstance(recorder, TraceRecorder)
        recorder.absorb(fault_out.recorder)
    baseline_tps = base_out.fleet_tps
    faulted_tps, degraded = fault_out.fleet_tps, fault_out.degraded

    points = []
    for w, (b_tps, f_tps) in enumerate(zip(baseline_tps, faulted_tps)):
        start = w * window_s
        active = sorted(
            {
                e.kind.value
                for e in plan.events
                if e.start_s <= start < e.end_s
            }
        )
        points.append(
            WindowPoint(w, start, b_tps, f_tps, tuple(active))
        )

    last_end = plan.last_fault_end_s()
    recovery_window = None
    for point in points:
        if point.start_s < last_end:
            continue
        if point.faulted_tps >= RECOVERY_THRESHOLD * point.baseline_tps:
            recovery_window = point.window
            break

    report = ChaosReport(
        seed=seed,
        fleet_size=fleet_size,
        windows=windows,
        window_s=window_s,
        plan=plan,
        points=points,
        delivered=fault_out.delivered,
        breaker_trips=fault_out.breaker_trips,
        fallbacks_served=fault_out.fallbacks_served,
        telemetry_gap_windows=fault_out.telemetry_gap_windows,
        degraded_tde_windows=degraded,
        recovery_window=recovery_window,
    )
    return report
