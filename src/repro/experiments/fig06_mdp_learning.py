"""Fig. 6 — learning progress and accuracy of the planner MDP.

The paper runs the §3.3 learning automaton on the production workload in
episodes of 350–400 steps: Fig. 6a shows episodic reward rising as
exploration gives way to exploitation, Fig. 6b the average accuracy of
the learning process climbing. Expected shape: both curves trend upward
and plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tde.planner_detector import EpisodeResult, PlannerThrottleDetector
from repro.dbsim.engine import SimulatedDatabase
from repro.workloads.production import ProductionWorkload

__all__ = ["MDPLearningRun", "run"]


@dataclass
class MDPLearningRun:
    """Per-episode summary of the learning experiment."""

    episodes: list[EpisodeResult]

    @property
    def episodic_rewards(self) -> list[float]:
        """Fig. 6a's series."""
        return [e.total_reward for e in self.episodes]

    @property
    def accuracies(self) -> list[float]:
        """Fig. 6b's series."""
        return [e.accuracy for e in self.episodes]

    def cumulative_mean_accuracy(self) -> list[float]:
        """Running average of accuracy (the 'average accuracy' panel)."""
        out: list[float] = []
        total = 0.0
        for i, value in enumerate(self.accuracies, start=1):
            total += value
            out.append(total / i)
        return out


def run(
    n_episodes: int = 8,
    steps_per_episode: int = 375,
    sample_queries: int = 24,
    seed: int = 0,
) -> MDPLearningRun:
    """Run the MDP over production-workload query samples."""
    db = SimulatedDatabase("postgres", "m4.xlarge", 59.0, seed=seed)
    workload = ProductionWorkload(seed=seed + 1)
    # Fine-grained unit steps: an episode's 350–400 actions should span
    # the climb from the live config to the optimum, so exploration
    # efficiency (what the automata learn) is what the reward measures.
    # Slow learning rates so convergence spans multiple episodes (the
    # paper's curves show learning building up over iterations).
    detector = PlannerThrottleDetector.for_database(
        "svc", db, seed=seed + 2, step_fraction=0.012,
        lr_reward=0.04, lr_penalty=0.01,
    )
    # Costs are deterministic (EXPLAIN), so even sub-0.1% gains are real;
    # the threshold must scale with the finer unit step.
    detector.profit_threshold = 0.0005
    episodes = []
    for episode in range(n_episodes):
        # §3.3: "the RL engine captures all the queries in a time frame
        # (typically a day or two)" — each episode sees the query sample
        # of a different stretch of the trace.
        batch = workload.batch(600.0, start_time_s=(8 + episode) * 3600.0)
        db.run(batch)  # bind the planner surface to the production workload
        detector.observe_queries(batch.sampled_queries)
        detector.observe_queries(batch.family_examples)
        queries = detector.reservoir.sample[:sample_queries]
        episodes.append(
            detector.run_episode(db, queries, steps=steps_per_episode)
        )
    return MDPLearningRun(episodes=episodes)
