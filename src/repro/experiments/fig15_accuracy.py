"""Fig. 15 — accuracy of the throttling detection engine per knob class.

The paper validates throttles against a trained tuner instead of a DBA:
OtterTune is trained on TPC-C, YCSB, Wikipedia and Twitter with
exploration minimised; when the TDE raises a throttle of class *c* on one
of those same workloads, the throttle counts as accurate iff the majority
of OtterTune's top-5 ranked knobs for that workload belong to class *c*.
Expected shape: high accuracy for memory and background-writer throttles,
lower for async/planner — because OtterTune's metric set contains no
planner estimates (see :data:`repro.dbsim.metrics.OTTERTUNE_METRICS`), it
cannot attribute importance to that class even when the TDE is right.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import KnobClass, postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.twitter import TwitterWorkload
from repro.workloads.wikipedia import WikipediaWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["AccuracyResult", "run"]


@dataclass
class AccuracyResult:
    """Throttle-accuracy tally per knob class."""

    accurate: dict[str, int] = field(default_factory=dict)
    total: dict[str, int] = field(default_factory=dict)

    def record(self, knob_class: str, is_accurate: bool) -> None:
        self.total[knob_class] = self.total.get(knob_class, 0) + 1
        if is_accurate:
            self.accurate[knob_class] = self.accurate.get(knob_class, 0) + 1

    def accuracy(self, knob_class: str) -> float | None:
        total = self.total.get(knob_class, 0)
        if total == 0:
            return None
        return self.accurate.get(knob_class, 0) / total


def _majority_class(
    ranked_knobs: list[str], catalog, top_k: int = 5
) -> str | None:
    counts: dict[str, int] = {}
    for name in ranked_knobs[:top_k]:
        cls = catalog.get(name).knob_class.value
        counts[cls] = counts.get(cls, 0) + 1
    if not counts:
        return None
    best = max(counts, key=counts.get)
    return best if counts[best] >= (min(top_k, len(ranked_knobs)) + 1) // 2 else best


def run(
    windows_per_workload: int = 12,
    seed: int = 0,
) -> AccuracyResult:
    """Reproduce Fig. 15 on PostgreSQL."""
    catalog = postgres_catalog()
    workloads: list[WorkloadGenerator] = [
        TPCCWorkload(rps=12_000.0, data_size_gb=22.0, seed=seed + 1),
        YCSBWorkload(rps=12_000.0, data_size_gb=18.34, seed=seed + 2),
        WikipediaWorkload(rps=6_000.0, data_size_gb=20.2, seed=seed + 3),
        TwitterWorkload(rps=12_000.0, data_size_gb=16.0, seed=seed + 4),
    ]
    repository = offline_train(catalog, workloads, n_configs=14, seed=seed + 5)
    # "We minimize this exploration by setting appropriate hyper
    # parameters manually": kappa ~ 0.
    tuner = OtterTuneTuner(
        catalog, repository, kappa=0.05, n_candidates=200,
        memory_limit_mb=13_107.0, seed=seed + 6,
    )

    result = AccuracyResult()
    for i, workload in enumerate(workloads):
        db = SimulatedDatabase(
            "postgres", "m4.xlarge", workload.data_size_gb, seed=seed + 10 + i
        )
        tde = ThrottlingDetectionEngine(
            "svc", db, repository, seed=seed + 20 + i, planner_trigger_every=2
        )
        for _ in range(windows_per_workload):
            window = db.run(workload.batch(60.0, start_time_s=db.clock_s))
            report = tde.inspect(window)
            if not report.throttles:
                continue
            dataset = repository.dataset(workload.name)
            ranked = tuner.ranked_knobs(dataset.configs, dataset.objective)
            majority = _majority_class(ranked, catalog)
            for throttle in report.throttles:
                result.record(
                    throttle.knob_class.value,
                    majority == throttle.knob_class.value,
                )
    return result
