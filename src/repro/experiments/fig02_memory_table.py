"""Fig. 2 — queries and memory statistics per workload on PostgreSQL.

The paper's table reports, for TPC-C, CH-Bench, YCSB and Wikipedia running
without indexes on a t3.xlarge PostgreSQL, the working memory allocated
(``work_mem``) and the memory/disk actually used by the queries. Expected
shape: Wikipedia and YCSB use no working memory; TPC-C uses ~0.5 MB (fits
in the 4 MB default); CH-Bench demands hundreds of MB and spills the rest
to disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import postgres_catalog
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload
from repro.workloads.wikipedia import WikipediaWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["MemoryRow", "run"]


@dataclass(frozen=True)
class MemoryRow:
    """One row of the Fig. 2 table."""

    workload: str
    work_mem_allocated_mb: float
    memory_used_mb: float
    disk_used_mb: float


def run(work_mem_mb: float = 4.0, window_s: float = 30.0, seed: int = 0) -> list[MemoryRow]:
    """Reproduce the Fig. 2 table rows."""
    catalog = postgres_catalog()
    workloads = [
        TPCCWorkload(seed=seed + 1),
        TPCHWorkload(seed=seed + 2),  # the CH-Bench stand-in
        YCSBWorkload(seed=seed + 3),
        WikipediaWorkload(seed=seed + 4),
    ]
    rows: list[MemoryRow] = []
    for workload in workloads:
        db = SimulatedDatabase(
            "postgres", "t3.xlarge", data_size_gb=workload.data_size_gb, seed=seed
        )
        db.config = KnobConfiguration(catalog, {"work_mem": work_mem_mb})
        result = db.run(workload.batch(window_s))
        rows.append(
            MemoryRow(
                workload=workload.name,
                work_mem_allocated_mb=work_mem_mb,
                memory_used_mb=round(result.spill.memory_used_mb, 2),
                disk_used_mb=round(result.spill.disk_used_mb, 2),
            )
        )
    return rows
