"""Adversarial-tuner chaos: the safety governor versus a rogue tuner.

Three identical AutoDBaaS landscapes run the same seeded workloads
window by window:

- **baseline** — fault injector disabled (the fault-free control);
- **ungoverned** — every tuner recommendation is adversarially
  perturbed (:attr:`~repro.faults.plan.FaultKind.BAD_RECOMMENDATION`
  active from an early window to the *end* of the run) and applied
  through the ordinary §4 pipeline;
- **governed** — same adversarial schedule, but the
  :class:`~repro.core.director.safety.SafetyGovernor` is armed:
  recommendations are bounded to the step budget, canaried on a slave,
  and auto-reverted on observed regression.

The report asserts the safety claim from both sides: with the governor
on, fleet throughput regression stays *bounded by the revert window*
(no regression streak outlives the watch) and overall retention stays
high; with it off, the same seed shows an *unbounded* regression — the
fleet is still regressed when the run ends. Everything derives from one
seed, so the rendered report is byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.director.safety import GovernorPolicy
from repro.experiments.chaos_recovery import _LandscapeTask, _run_landscape_task
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.parallel import FleetExecutor

__all__ = [
    "GOVERNED_RETENTION_THRESHOLD",
    "REGRESSION_BAR",
    "AdversarialPoint",
    "AdversarialReport",
    "run",
]

#: The governed fleet must keep at least this fraction of the fault-free
#: fleet's total throughput despite the adversarial tuner.
GOVERNED_RETENTION_THRESHOLD = 0.9

#: A window counts as regressed when its throughput falls below this
#: fraction of the baseline window's.
REGRESSION_BAR = 0.9

#: Windows of the run tail used for the "still regressed at the end"
#: (unbounded-regression) assertion against the ungoverned arm.
_TAIL_WINDOWS = 5

#: First window of the adversarial phase: late enough that offline-trained
#: tuning has produced an incumbent worth defending.
_START_WINDOW = 3


@dataclass(frozen=True)
class AdversarialPoint:
    """Fleet throughput in one monitoring window, all three arms."""

    window: int
    start_s: float
    baseline_tps: float
    ungoverned_tps: float
    governed_tps: float

    @property
    def ungoverned_ratio(self) -> float:
        if self.baseline_tps <= 0:
            return 1.0
        return self.ungoverned_tps / self.baseline_tps

    @property
    def governed_ratio(self) -> float:
        if self.baseline_tps <= 0:
            return 1.0
        return self.governed_tps / self.baseline_tps


def _longest_regression_streak(ratios: list[float]) -> int:
    """Longest run of consecutive windows below :data:`REGRESSION_BAR`."""
    longest = current = 0
    for ratio in ratios:
        current = current + 1 if ratio < REGRESSION_BAR else 0
        longest = max(longest, current)
    return longest


@dataclass
class AdversarialReport:
    """Everything one adversarial chaos run produced."""

    seed: int
    fleet_size: int
    windows: int
    window_s: float
    plan: FaultPlan
    policy: GovernorPolicy
    points: list[AdversarialPoint] = field(default_factory=list)
    delivered: dict[str, int] = field(default_factory=dict)
    safety_clamps: int = 0
    canary_rejections: int = 0
    reverts: int = 0
    governed_breaker_trips: int = 0
    governed_fallbacks: int = 0
    ungoverned_breaker_trips: int = 0
    ungoverned_fallbacks: int = 0

    # -- derived measurements --------------------------------------------------

    @property
    def governed_retention(self) -> float:
        baseline = sum(p.baseline_tps for p in self.points)
        governed = sum(p.governed_tps for p in self.points)
        return governed / baseline if baseline > 0 else 1.0

    @property
    def ungoverned_retention(self) -> float:
        baseline = sum(p.baseline_tps for p in self.points)
        ungoverned = sum(p.ungoverned_tps for p in self.points)
        return ungoverned / baseline if baseline > 0 else 1.0

    @property
    def governed_regression_streak(self) -> int:
        return _longest_regression_streak(
            [p.governed_ratio for p in self.points]
        )

    @property
    def ungoverned_regression_streak(self) -> int:
        return _longest_regression_streak(
            [p.ungoverned_ratio for p in self.points]
        )

    @property
    def regression_bound(self) -> int:
        """Longest regression streak the revert window permits.

        A bad promotion can regress at most ``watch_windows`` watched
        windows before the revert triggers, plus the window in which the
        restored config warms back up.
        """
        return self.policy.watch_windows + 1

    @property
    def ungoverned_tail_ratio(self) -> float:
        tail = self.points[-_TAIL_WINDOWS:]
        baseline = sum(p.baseline_tps for p in tail)
        ungoverned = sum(p.ungoverned_tps for p in tail)
        return ungoverned / baseline if baseline > 0 else 1.0

    # -- the two-sided verdict -------------------------------------------------

    @property
    def governed_bounded(self) -> bool:
        """Governor on: regression bounded by the revert window."""
        return (
            self.governed_regression_streak <= self.regression_bound
            and self.governed_retention >= GOVERNED_RETENTION_THRESHOLD
        )

    @property
    def ungoverned_unbounded(self) -> bool:
        """Governor off, same seed: the regression never clears."""
        return (
            self.ungoverned_regression_streak > self.regression_bound
            and self.ungoverned_tail_ratio < REGRESSION_BAR
            and self.ungoverned_retention < self.governed_retention
        )

    @property
    def passed(self) -> bool:
        return self.governed_bounded and self.ungoverned_unbounded

    def render(self) -> str:
        """Fixed-format text report (byte-identical for a given seed)."""
        lines = [
            "adversarial chaos report "
            f"(seed={self.seed} fleet={self.fleet_size} "
            f"windows={self.windows} window_s={self.window_s:.0f})",
            "",
            f"governor policy: step_budget={self.policy.step_budget:.2f} "
            f"canary_threshold={self.policy.canary_threshold:.2f} "
            f"revert_threshold={self.policy.revert_threshold:.2f} "
            f"watch_windows={self.policy.watch_windows}",
            "",
            "scheduled faults:",
        ]
        for event in self.plan.events:
            lines.append(
                f"  {event.start_s:7.0f}s +{event.duration_s:6.0f}s  "
                f"{event.kind.value:<20s} {event.target:<10s} "
                f"x{event.magnitude:.2f}"
            )
        lines += [
            "",
            "  w      start_s  baseline_tps  ungoverned_tps  governed_tps  "
            "u_ratio  g_ratio",
        ]
        for p in self.points:
            lines.append(
                f"  {p.window:02d}  {p.start_s:9.0f}  {p.baseline_tps:12.1f}  "
                f"{p.ungoverned_tps:14.1f}  {p.governed_tps:12.1f}  "
                f"{p.ungoverned_ratio:7.3f}  {p.governed_ratio:7.3f}"
            )
        delivered = " ".join(
            f"{kind}={count}" for kind, count in sorted(self.delivered.items())
        )
        lines += [
            "",
            f"delivered: {delivered if delivered else '-'}",
            (
                f"safety: violations_clamped={self.safety_clamps} "
                f"canary_rejections={self.canary_rejections} "
                f"reverts={self.reverts}"
            ),
            (
                f"control plane (governed): "
                f"breaker_trips={self.governed_breaker_trips} "
                f"fallbacks_served={self.governed_fallbacks}"
            ),
            (
                f"control plane (ungoverned): "
                f"breaker_trips={self.ungoverned_breaker_trips} "
                f"fallbacks_served={self.ungoverned_fallbacks}"
            ),
            (
                f"retention: governed={self.governed_retention:.3f} "
                f"ungoverned={self.ungoverned_retention:.3f}"
            ),
            (
                f"regression streaks (bar {REGRESSION_BAR:.2f}): "
                f"governed={self.governed_regression_streak} "
                f"ungoverned={self.ungoverned_regression_streak} "
                f"bound={self.regression_bound}"
            ),
            f"ungoverned tail ratio (last {_TAIL_WINDOWS}w): "
            f"{self.ungoverned_tail_ratio:.3f}",
            (
                "assert governed-bounded: "
                f"{'ok' if self.governed_bounded else 'FAILED'} "
                f"(streak <= {self.regression_bound} and retention >= "
                f"{GOVERNED_RETENTION_THRESHOLD:.2f})"
            ),
            (
                "assert ungoverned-unbounded: "
                f"{'ok' if self.ungoverned_unbounded else 'FAILED'} "
                f"(streak > {self.regression_bound} and tail < "
                f"{REGRESSION_BAR:.2f})"
            ),
            f"verdict: {'PASS' if self.passed else 'FAIL'} "
            "(adversarial regression bounded by the revert window)",
        ]
        return "\n".join(lines) + "\n"


def _adversarial_plan(windows: int, window_s: float) -> FaultPlan:
    """Every tuner adversarial from the early phase to the end of the run.

    Unlike the standard profile there is deliberately no fault-free
    tail: the unbounded-regression assertion needs the attack to
    persist, so recovery can only come from the governor, never from
    the attacker giving up.
    """
    start_s = _START_WINDOW * window_s
    duration_s = max(window_s, windows * window_s - start_s)
    return FaultPlan(
        (
            FaultEvent(
                FaultKind.BAD_RECOMMENDATION, "*", start_s, duration_s, 1.0
            ),
        )
    )


def run(
    fleet_size: int = 3,
    windows: int = 28,
    window_s: float = 300.0,
    seed: int = 0,
    quick: bool = False,
    workers: int = 1,
    start_method: str | None = None,
    policy: GovernorPolicy | None = None,
) -> AdversarialReport:
    """Run the adversarial chaos experiment; see the module docstring.

    ``quick`` shrinks the fleet and the horizon for CI. The three
    landscapes are fully independent, so ``workers >= 2`` runs them
    concurrently with byte-identical results (order-stable reduction).
    """
    if quick:
        fleet_size = min(fleet_size, 2)
        windows = min(windows, 18)
    offline_configs = 6 if quick else 10
    policy = policy if policy is not None else GovernorPolicy()
    plan = _adversarial_plan(windows, window_s)

    executor = FleetExecutor(workers=workers, start_method=start_method)
    base_out, ungoverned_out, governed_out = executor.map(
        _run_landscape_task,
        [
            _LandscapeTask(
                seed, fleet_size, windows, window_s, offline_configs, plan,
                enabled=False,
            ),
            _LandscapeTask(
                seed, fleet_size, windows, window_s, offline_configs, plan,
                enabled=True,
            ),
            _LandscapeTask(
                seed, fleet_size, windows, window_s, offline_configs, plan,
                enabled=True,
                governor=policy,
            ),
        ],
    )

    points = [
        AdversarialPoint(
            window=w,
            start_s=w * window_s,
            baseline_tps=b_tps,
            ungoverned_tps=u_tps,
            governed_tps=g_tps,
        )
        for w, (b_tps, u_tps, g_tps) in enumerate(
            zip(
                base_out.fleet_tps,
                ungoverned_out.fleet_tps,
                governed_out.fleet_tps,
            )
        )
    ]
    delivered = dict(governed_out.delivered)
    for kind, count in ungoverned_out.delivered.items():
        delivered[f"ungoverned_{kind}"] = count
    return AdversarialReport(
        seed=seed,
        fleet_size=fleet_size,
        windows=windows,
        window_s=window_s,
        plan=plan,
        policy=policy,
        points=points,
        delivered=delivered,
        safety_clamps=governed_out.safety_clamps,
        canary_rejections=governed_out.canary_rejections,
        reverts=governed_out.reverts,
        governed_breaker_trips=governed_out.breaker_trips,
        governed_fallbacks=governed_out.fallbacks_served,
        ungoverned_breaker_trips=ungoverned_out.breaker_trips,
        ungoverned_fallbacks=ungoverned_out.fallbacks_served,
    )
