"""Figs. 12–13 — live-database throughput with and without the TDE gate.

Fig. 12: OtterTune tunes a fleet of production databases. Bootstrapped
with offline workloads it starts well, but without the TDE its repository
fills with low-quality idle-window samples from the first batch of
production systems; when a later database (the paper hooks the 40th) asks
for recommendations, the corrupted mapping/surrogate sends it bad configs
and its hourly throughput suffers. With the TDE gate (only throttle-time
samples uploaded) the repository stays clean and throughput stays high.

Fig. 13: the same comparison for CDBTune. The RL tuner barely reuses
cross-system experience, so corruption "happens directly from the first
hooked database": its own policy trains on meaningless rewards from idle
windows, and recommendations churn the knobs. The measured database is
therefore the *first* one connected.

Both run on the AutoDBaaS facade; ``policy="periodic"`` is the paper's
baseline (every window sampled + periodic requests), ``policy="tde"`` the
proposed pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.provisioner import Provisioner
from repro.core.service import AutoDBaaS
from repro.dbsim.knobs import catalog_for
from repro.experiments.common import offline_train
from repro.tuners.base import Tuner
from repro.tuners.cdbtune import CDBTuneTuner
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.repository import WorkloadRepository
from repro.workloads.production import ProductionWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["ThroughputSeries", "run"]


@dataclass
class ThroughputSeries:
    """Hourly mean throughput of the measured database, both modes."""

    hours: list[float]
    gated_tps: list[float]
    ungated_tps: list[float]
    gated_requests: int = 0
    ungated_requests: int = 0

    def mean_gated(self) -> float:
        return sum(self.gated_tps) / len(self.gated_tps)

    def mean_ungated(self) -> float:
        return sum(self.ungated_tps) / len(self.ungated_tps)

    def daytime_mean(self, series: list[float]) -> float:
        """Mean over the loaded 8 AM – 10 PM hours."""
        day = [v for h, v in zip(self.hours, series) if 8 <= h <= 22]
        return sum(day) / len(day) if day else 0.0

    @property
    def gated_advantage(self) -> float:
        """Ratio of gated to ungated daytime throughput."""
        ungated = self.daytime_mean(self.ungated_tps)
        gated = self.daytime_mean(self.gated_tps)
        return gated / ungated if ungated > 0 else float("inf")


def _make_tuner(
    tuner_kind: str, flavor: str, repository: WorkloadRepository, seed: int
) -> Tuner:
    catalog = catalog_for(flavor)
    if tuner_kind == "ottertune":
        return OtterTuneTuner(
            catalog,
            repository,
            n_candidates=150,
            memory_limit_mb=13_107.0,  # m4.xlarge budget; repaired per-node anyway
            seed=seed,
        )
    if tuner_kind == "cdbtune":
        return CDBTuneTuner(catalog, memory_limit_mb=13_107.0, seed=seed)
    raise ValueError(f"unknown tuner kind {tuner_kind!r}")


def _one_mode(
    tuner_kind: str,
    flavor: str,
    policy: str,
    hours: float,
    window_s: float,
    feeder_count: int,
    seed: int,
) -> list[float]:
    """Run one landscape mode; return hourly tps of the measured DB.

    ``feeder_count`` earlier production databases run first in the same
    landscape (the paper's first batch of hooked systems); the measured
    database attaches afterwards. For CDBTune the measured DB is the first
    (feeders only add load), matching the paper.
    """
    catalog = catalog_for(flavor)
    repository = offline_train(
        catalog,
        [
            TPCCWorkload(rps=12_000.0, data_size_gb=26.0, seed=seed + 1),
            YCSBWorkload(rps=12_000.0, data_size_gb=20.0, seed=seed + 2),
        ],
        n_configs=10,
        seed=seed + 3,
    )
    tuner = _make_tuner(tuner_kind, flavor, repository, seed + 4)
    service = AutoDBaaS([tuner], repository, window_s=window_s)
    provisioner = Provisioner(seed=seed + 5)

    measured_first = tuner_kind == "cdbtune"
    feeders = []
    for i in range(feeder_count):
        deployment = provisioner.provision(
            plan="m4.xlarge", flavor=flavor, data_size_gb=30.0 + i
        )
        feeders.append(deployment)
    measured = provisioner.provision(plan="m4.xlarge", flavor=flavor, data_size_gb=59.0)

    order = ([measured] + feeders) if measured_first else (feeders + [measured])
    for i, deployment in enumerate(order):
        # The measured tenant is busy enough to be capacity-bound during
        # the daytime plateau — otherwise achieved throughput equals the
        # offered rate for any configuration and the figure shows nothing.
        # Each tenant is its own customer workload: distinct ids so the
        # workload mapping sees them as separate experiences (the paper's
        # corruption flows through mapping onto *other* production systems).
        workload = ProductionWorkload(
            mean_rps=4000.0 if deployment is measured else 120.0,
            data_size_gb=deployment.service.master.data_size_gb,
            seed=seed + 10 + i,
            name=f"prod-{deployment.instance_id}",
        )
        # The ungated baseline is a *native* tuner deployment: every
        # recommendation is applied with a database restart (both
        # OtterTune's and CDBTune's own methodologies restart per
        # iteration); the TDE-gated mode runs AutoDBaaS's §4 pipeline.
        service.attach(
            deployment,
            workload,
            policy=policy,
            periodic_interval_s=window_s,
            apply_mode="split" if policy == "tde" else "restart",
        )

    managed = service.instances[measured.instance_id]
    windows = int(hours * 3600.0 / window_s)
    requests = 0
    for _ in range(windows):
        for outcome in service.step():
            if outcome.instance_id == measured.instance_id:
                requests += int(outcome.tuning_requested)

    per_hour = max(1, int(3600.0 / window_s))
    tps = managed.throughput_history
    hourly = [
        sum(tps[i : i + per_hour]) / len(tps[i : i + per_hour])
        for i in range(0, len(tps), per_hour)
    ]
    return hourly, requests


def run(
    tuner_kind: str = "ottertune",
    flavor: str = "postgres",
    hours: float = 12.0,
    window_s: float = 600.0,
    feeder_count: int = 4,
    seed: int = 0,
) -> ThroughputSeries:
    """Reproduce one panel of Fig. 12 (ottertune) or Fig. 13 (cdbtune)."""
    gated, gated_requests = _one_mode(
        tuner_kind, flavor, "tde", hours, window_s, feeder_count, seed
    )
    ungated, ungated_requests = _one_mode(
        tuner_kind, flavor, "periodic", hours, window_s, feeder_count, seed
    )
    n = min(len(gated), len(ungated))
    return ThroughputSeries(
        hours=[float(h) for h in range(n)],
        gated_tps=gated[:n],
        ungated_tps=ungated[:n],
        gated_requests=gated_requests,
        ungated_requests=ungated_requests,
    )
