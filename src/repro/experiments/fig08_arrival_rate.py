"""Fig. 8 — production workload query arrival rate.

The paper plots the captured customer trace's arrival rate (42.13M
queries/day average). We regenerate the synthetic stand-in's per-hour
arrival counts over a representative day and check the published totals.
Expected shape: overnight trough, steep 8–11 AM ramp, midday plateau,
evening decline; daily total ≈ 42M.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.production import ProductionWorkload

__all__ = ["ArrivalPoint", "run", "daily_total"]


@dataclass(frozen=True)
class ArrivalPoint:
    """Arrivals during one hour of the day."""

    hour: int
    queries: int
    rate_per_s: float


def run(day: int = 0, seed: int = 0) -> list[ArrivalPoint]:
    """Hourly arrival counts for one simulated day."""
    workload = ProductionWorkload(seed=seed)
    points: list[ArrivalPoint] = []
    for hour in range(24):
        start = day * 86_400.0 + hour * 3600.0
        batch = workload.batch(3600.0, start_time_s=start)
        points.append(
            ArrivalPoint(
                hour=hour,
                queries=batch.total_queries,
                rate_per_s=batch.total_queries / 3600.0,
            )
        )
    return points


def daily_total(points: list[ArrivalPoint]) -> int:
    """Total queries across the day."""
    return sum(p.queries for p in points)
