"""Fig. 9 — tuning requests per minute for a fleet of live databases.

The paper connects 80 live database deployments and compares the tuning
requests generated per minute by (a) the TDE's event-driven triggering,
(b) a periodic approach with a 5-minute period, and (c) a 10-minute
period, over one day of the production workload. Expected shape: the
periodic baselines are flat at ``fleet / period``; the TDE series sits
well below both on average, peaking when the workload pattern shifts
(the 8–11 AM usage surge).

The default arguments run the paper scale, ``fleet_size=80`` over 24 h;
the bench harness passes a smaller fleet for runtime — the series shapes
are unaffected because every member behaves independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.fleet import LiveFleet
from repro.common.recording import NULL_RECORDER, Recorder
from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.production import ProductionWorkload

__all__ = ["RequestRatePoint", "Fig09Run", "run"]


@dataclass(frozen=True)
class RequestRatePoint:
    """Requests per minute in one reporting bucket."""

    hour: float
    tde_rpm: float
    periodic_5min_rpm: float
    periodic_10min_rpm: float


@dataclass
class Fig09Run:
    """The three series plus totals."""

    points: list[RequestRatePoint]
    tde_total: int
    periodic_5min_total: int
    periodic_10min_total: int

    def tde_mean_rpm(self) -> float:
        return sum(p.tde_rpm for p in self.points) / len(self.points)

    def tde_peak_hour(self) -> float:
        return max(self.points, key=lambda p: p.tde_rpm).hour


def run(
    fleet_size: int = 80,
    hours: float = 24.0,
    window_s: float = 300.0,
    bucket_s: float = 3600.0,
    warmup_hours: float = 2.0,
    seed: int = 0,
    recorder: Recorder | None = None,
) -> Fig09Run:
    """Simulate the fleet for *hours* and count tuning requests.

    TDE members get real recommendations applied (a good recommendation
    suppresses the next throttle, which the paper calls out as directly
    affecting the request rate); periodic counts are analytic
    (``fleet / period``, what a period-driven director would emit).
    A *recorder* (the trace harness) observes the TDE rounds and the
    director's routing; None keeps the no-op default.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    catalog = postgres_catalog()
    # Bootstrap the tuner with a *stress-rate* offline session: the
    # samples must rank configurations, and good recommendations are what
    # keeps throttles from re-firing (the paper: "if the tuner generates
    # good configuration ... there are pretty less chances of a throttle").
    repository = offline_train(
        catalog,
        [
            ProductionWorkload(
                mean_rps=10_000.0, data_size_gb=30.0, seed=seed + 90,
                name="production-offline",
            )
        ],
        n_configs=14,
        seed=seed + 91,
    )
    paper_scale = fleet_size > 24
    if paper_scale:
        # At paper scale dozens of members bump the shared repository
        # every window; per-version refresh of derived models (decile
        # edges, Lasso rankings) is pointless churn there, so amortisation
        # starts well before the conservative default. Small (bench-scale)
        # fleets keep exact refresh.
        repository.exact_refresh_limit = 500
    tuner = OtterTuneTuner(
        catalog,
        repository,
        n_candidates=150,
        # The shared repository collects dozens of fresh fleet samples per
        # window at paper scale; a tighter (and cheaper, the fit is cubic)
        # training window still spans several windows of recent evidence.
        max_train_samples=150 if paper_scale else 300,
        memory_limit_mb=None,  # repaired per-member below
        seed=seed + 92,
    )
    from repro.core.director.config_director import ConfigDirector
    from repro.core.director.load_balancer import LeastLoadedBalancer, TunerInstance

    tuner.bind_recorder(rec)
    director = ConfigDirector(
        LeastLoadedBalancer([TunerInstance("tuner-00", tuner)]),
        recorder=rec,
    )
    # The TDE reads a bounded sample of each member's streaming log; at
    # paper scale a smaller per-window sample keeps the day-long 80-member
    # simulation tractable while the template/class statistics it feeds
    # stay well-populated (64 queries per 5-minute window per member).
    fleet = LiveFleet(
        size=fleet_size,
        flavor="postgres",
        seed=seed,
        sample_size=64 if paper_scale else 200,
        # Nothing in this experiment reads the monitoring series back;
        # retaining a day of per-second telemetry for 80 members would
        # cost gigabytes, so keep an hour, like a real backend would.
        monitoring_retention_s=3600.0 if paper_scale else None,
    )
    tdes = {
        member.instance_id: ThrottlingDetectionEngine(
            member.instance_id,
            member.deployment.service.master,
            repository,
            seed=seed + i,
            recorder=rec,
        )
        for i, member in enumerate(fleet.members)
    }

    request_times: list[float] = []
    warmup_end = warmup_hours * 3600.0
    windows = int((hours + warmup_hours) * 3600.0 / window_s)
    for _ in range(windows):
        now = fleet.clock_s - warmup_end
        rec.advance(fleet.clock_s)
        with rec.span(
            "landscape.window", duration_s=window_s, fleet=fleet_size
        ):
            for member, result in fleet.step(window_s):
                report = tdes[member.instance_id].inspect(result)
                if not report.needs_tuning:
                    continue
                if now >= 0.0:
                    # The fleet converges during warm-up (floors settle,
                    # caps get filtered); counting starts afterwards, like
                    # the paper's long-connected deployments.
                    request_times.append(now)
                master = member.deployment.service.master
                repository.add(
                    TrainingSample(
                        result.batch.workload_name, result.config, result.metrics, now
                    )
                )
                actionable = [t for t in report.throttles if not t.requires_restart]
                split = director.handle_tuning_request(
                    TuningRequest(
                        member.instance_id,
                        result.batch.workload_name,
                        result.config,
                        result.metrics,
                        throttle_class=actionable[0].knob_class.value,
                        throttle_knobs=tuple(
                            sorted({n for t in actionable for n in t.knobs})
                        ),
                        timestamp_s=now,
                    )
                )
                fitted = split.reloadable.fitted_to_budget(
                    master.vm.db_memory_limit_mb, master.active_connections
                )
                master.apply_config(fitted, mode="reload")
                director.balancer.drain(window_s)

    points: list[RequestRatePoint] = []
    buckets = int(hours * 3600.0 / bucket_s)
    for b in range(buckets):
        start, end = b * bucket_s, (b + 1) * bucket_s
        count = sum(1 for t in request_times if start <= t < end)
        points.append(
            RequestRatePoint(
                hour=start / 3600.0,
                tde_rpm=count / (bucket_s / 60.0),
                periodic_5min_rpm=fleet_size / 5.0,
                periodic_10min_rpm=fleet_size / 10.0,
            )
        )
    minutes = hours * 60.0
    return Fig09Run(
        points=points,
        tde_total=len(request_times),
        periodic_5min_total=int(fleet_size * minutes / 5.0),
        periodic_10min_total=int(fleet_size * minutes / 10.0),
    )
