"""Fig. 9 — tuning requests per minute for a fleet of live databases.

The paper connects 80 live database deployments and compares the tuning
requests generated per minute by (a) the TDE's event-driven triggering,
(b) a periodic approach with a 5-minute period, and (c) a 10-minute
period, over one day of the production workload. Expected shape: the
periodic baselines are flat at ``fleet / period``; the TDE series sits
well below both on average, peaking when the workload pattern shifts
(the 8–11 AM usage surge).

The default arguments run the paper scale, ``fleet_size=80`` over 24 h;
the bench harness passes a smaller fleet for runtime — the series shapes
are unaffected because every member behaves independently.

Execution model (:mod:`repro.parallel`): fleet members are partitioned
into shards; each shard worker owns its members' databases, workloads,
monitoring agents and TDEs, plus a snapshot of the tuner repository.
Per window every member runs its batch and TDE round inside its shard
(the embarrassingly parallel part), then the coordinator — the single
writer of shared state — replays the per-member outcomes in canonical
member order: samples land in the live repository, the director routes
tuning requests, and fitted configs are shipped back to the owning
shard for application at the start of the next window. Repository
samples reach the shard snapshots one window later via the same
broadcast, under both the sequential and the process backend, which is
why ``--workers N`` is output-invariant.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.fleet import FleetSpec, build_member
from repro.common.recording import NULL_RECORDER, Recorder
from repro.common.rng import stream_root
from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.core.tde.throttle import Throttle
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import offline_train
from repro.obs.trace import TraceRecorder
from repro.parallel import FleetExecutor
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.repository import WorkloadRepository
from repro.workloads.production import ProductionWorkload

__all__ = ["RequestRatePoint", "Fig09Run", "run"]


@dataclass(frozen=True)
class RequestRatePoint:
    """Requests per minute in one reporting bucket."""

    hour: float
    tde_rpm: float
    periodic_5min_rpm: float
    periodic_10min_rpm: float


@dataclass
class Fig09Run:
    """The three series plus totals."""

    points: list[RequestRatePoint]
    tde_total: int
    periodic_5min_total: int
    periodic_10min_total: int

    def tde_mean_rpm(self) -> float:
        return sum(p.tde_rpm for p in self.points) / len(self.points)

    def tde_peak_hour(self) -> float:
        return max(self.points, key=lambda p: p.tde_rpm).hour


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a shard worker needs to build its members, picklable."""

    fleet: FleetSpec
    repository: WorkloadRepository
    tde_seed: int
    window_s: float
    traced: bool = False
    host_time: bool = False


@dataclass(frozen=True)
class WindowCommand:
    """One window's instructions, broadcast to every shard."""

    window_s: float
    #: Fitted configs from last window's tuning requests, applied to the
    #: owning member's master (reload) before this window's batch runs.
    apply: dict[int, Any] = field(default_factory=dict)
    #: Samples the coordinator added to the live repository last window,
    #: in canonical order — keeps shard repository snapshots one window
    #: behind the coordinator, identically under every backend.
    new_samples: tuple[TrainingSample, ...] = ()


@dataclass
class MemberWindowOut:
    """One member's window outcome, shipped back to the coordinator."""

    index: int
    instance_id: str
    workload_name: str
    config: Any
    metrics: Any
    throttles: list[Throttle]
    needs_tuning: bool
    memory_limit_mb: float
    active_connections: int
    fragment: TraceRecorder | None = None


class Fig09ShardWorker:
    """Owns one shard's members; steps them one window at a time."""

    def __init__(self, spec: _ShardSpec, indices: tuple[int, ...]) -> None:
        # Every backend gives the shard its own repository snapshot via an
        # explicit pickle round-trip, so in-process (sequential) shards
        # behave exactly like forked/spawned ones.
        self.repository: WorkloadRepository = pickle.loads(
            pickle.dumps(spec.repository)
        )
        self.spec = spec
        self.indices = tuple(sorted(indices))
        self.members = {i: build_member(spec.fleet, i) for i in self.indices}
        self.tdes = {
            i: ThrottlingDetectionEngine(
                member.instance_id,
                member.deployment.service.master,
                self.repository,
                seed=spec.tde_seed + i,
            )
            for i, member in self.members.items()
        }
        self.clock_s = 0.0

    def step(self, command: WindowCommand) -> list[tuple[int, MemberWindowOut]]:
        for sample in command.new_samples:
            self.repository.add(sample)
        outs: list[tuple[int, MemberWindowOut]] = []
        for i in self.indices:
            member = self.members[i]
            master = member.deployment.service.master
            fitted = command.apply.get(i)
            if fitted is not None:
                master.apply_config(fitted, mode="reload")
            tde = self.tdes[i]
            fragment: TraceRecorder | None = None
            if self.spec.traced:
                fragment = TraceRecorder(host_time=self.spec.host_time)
                fragment.advance(self.clock_s)
                tde.recorder = fragment
            else:
                tde.recorder = NULL_RECORDER
            batch = member.workload.batch(
                command.window_s, start_time_s=self.clock_s + member.phase_offset_s
            )
            result = member.deployment.service.run(batch)
            member.monitoring.ingest(result)
            report = tde.inspect(result)
            outs.append(
                (
                    i,
                    MemberWindowOut(
                        index=i,
                        instance_id=member.instance_id,
                        workload_name=result.batch.workload_name,
                        config=result.config,
                        metrics=result.metrics,
                        throttles=list(report.throttles),
                        needs_tuning=report.needs_tuning,
                        memory_limit_mb=master.vm.db_memory_limit_mb,
                        active_connections=master.active_connections,
                        fragment=fragment,
                    ),
                )
            )
        self.clock_s += command.window_s
        return outs


def _shard_factory(spec: _ShardSpec, indices: tuple[int, ...]) -> Fig09ShardWorker:
    """Top-level factory so every multiprocessing start method can use it."""
    return Fig09ShardWorker(spec, indices)


def run(
    fleet_size: int = 80,
    hours: float = 24.0,
    window_s: float = 300.0,
    bucket_s: float = 3600.0,
    warmup_hours: float = 2.0,
    seed: int = 0,
    recorder: Recorder | None = None,
    workers: int = 1,
    start_method: str | None = None,
) -> Fig09Run:
    """Simulate the fleet for *hours* and count tuning requests.

    TDE members get real recommendations applied (a good recommendation
    suppresses the next throttle, which the paper calls out as directly
    affecting the request rate); periodic counts are analytic
    (``fleet / period``, what a period-driven director would emit).
    A *recorder* (the trace harness) observes the TDE rounds and the
    director's routing; None keeps the no-op default. *workers* selects
    the sharded backend (1: in-process sequential; N: one worker process
    per shard) — output is byte-identical across worker counts.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    catalog = postgres_catalog()
    # Bootstrap the tuner with a *stress-rate* offline session: the
    # samples must rank configurations, and good recommendations are what
    # keeps throttles from re-firing (the paper: "if the tuner generates
    # good configuration ... there are pretty less chances of a throttle").
    repository = offline_train(
        catalog,
        [
            ProductionWorkload(
                mean_rps=10_000.0, data_size_gb=30.0, seed=seed + 90,
                name="production-offline",
            )
        ],
        n_configs=14,
        seed=seed + 91,
    )
    paper_scale = fleet_size > 24
    if paper_scale:
        # At paper scale dozens of members bump the shared repository
        # every window; per-version refresh of derived models (decile
        # edges, Lasso rankings) is pointless churn there, so amortisation
        # starts well before the conservative default. Small (bench-scale)
        # fleets keep exact refresh.
        repository.exact_refresh_limit = 500
    tuner = OtterTuneTuner(
        catalog,
        repository,
        n_candidates=150,
        # The shared repository collects dozens of fresh fleet samples per
        # window at paper scale; a tighter (and cheaper, the fit is cubic)
        # training window still spans several windows of recent evidence.
        max_train_samples=150 if paper_scale else 300,
        memory_limit_mb=None,  # repaired per-member below
        seed=seed + 92,
    )
    from repro.core.director.config_director import ConfigDirector
    from repro.core.director.load_balancer import LeastLoadedBalancer, TunerInstance

    tuner.bind_recorder(rec)
    director = ConfigDirector(
        LeastLoadedBalancer([TunerInstance("tuner-00", tuner)]),
        recorder=rec,
    )
    # The TDE reads a bounded sample of each member's streaming log; at
    # paper scale a smaller per-window sample keeps the day-long 80-member
    # simulation tractable while the template/class statistics it feeds
    # stay well-populated (64 queries per 5-minute window per member).
    traced = isinstance(rec, TraceRecorder)
    spec = _ShardSpec(
        fleet=FleetSpec(
            size=fleet_size,
            flavor="postgres",
            root=stream_root(seed),
            sample_size=64 if paper_scale else 200,
            # Nothing in this experiment reads the monitoring series back;
            # retaining a day of per-second telemetry for 80 members would
            # cost gigabytes, so keep an hour, like a real backend would.
            monitoring_retention_s=3600.0 if paper_scale else None,
        ),
        repository=repository,
        tde_seed=seed,
        window_s=window_s,
        traced=traced,
        host_time=traced and rec.host_time,  # type: ignore[union-attr]
    )
    executor = FleetExecutor(workers=workers, start_method=start_method)

    request_times: list[float] = []
    warmup_end = warmup_hours * 3600.0
    windows = int((hours + warmup_hours) * 3600.0 / window_s)
    clock_s = 0.0
    pending: dict[int, Any] = {}
    delta: list[TrainingSample] = []
    with executor.fleet_session(_shard_factory, spec, fleet_size) as session:
        for _ in range(windows):
            now = clock_s - warmup_end
            rec.advance(clock_s)
            with rec.span(
                "landscape.window", duration_s=window_s, fleet=fleet_size
            ):
                outs = session.step(
                    WindowCommand(
                        window_s=window_s,
                        apply=pending,
                        new_samples=tuple(delta),
                    )
                )
                pending, delta = {}, []
                for _, out in outs:
                    if out.fragment is not None:
                        assert isinstance(rec, TraceRecorder)
                        rec.absorb(out.fragment)
                for _, out in outs:
                    if not out.needs_tuning:
                        continue
                    if now >= 0.0:
                        # The fleet converges during warm-up (floors settle,
                        # caps get filtered); counting starts afterwards, like
                        # the paper's long-connected deployments.
                        request_times.append(now)
                    sample = TrainingSample(
                        out.workload_name, out.config, out.metrics, now
                    )
                    repository.add(sample)
                    delta.append(sample)
                    actionable = [t for t in out.throttles if not t.requires_restart]
                    split = director.handle_tuning_request(
                        TuningRequest(
                            out.instance_id,
                            out.workload_name,
                            out.config,
                            out.metrics,
                            throttle_class=actionable[0].knob_class.value,
                            throttle_knobs=tuple(
                                sorted({n for t in actionable for n in t.knobs})
                            ),
                            timestamp_s=now,
                        )
                    )
                    pending[out.index] = split.reloadable.fitted_to_budget(
                        out.memory_limit_mb, out.active_connections
                    )
                    director.balancer.drain(window_s)
            clock_s += window_s

    points: list[RequestRatePoint] = []
    buckets = int(hours * 3600.0 / bucket_s)
    for b in range(buckets):
        start, end = b * bucket_s, (b + 1) * bucket_s
        count = sum(1 for t in request_times if start <= t < end)
        points.append(
            RequestRatePoint(
                hour=start / 3600.0,
                tde_rpm=count / (bucket_s / 60.0),
                periodic_5min_rpm=fleet_size / 5.0,
                periodic_10min_rpm=fleet_size / 10.0,
            )
        )
    minutes = hours * 60.0
    return Fig09Run(
        points=points,
        tde_total=len(request_times),
        periodic_5min_total=int(fleet_size * minutes / 5.0),
        periodic_10min_total=int(fleet_size * minutes / 10.0),
    )
