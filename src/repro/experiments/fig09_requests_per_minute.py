"""Fig. 9 — tuning requests per minute for a fleet of live databases.

The paper connects 80 live database deployments and compares the tuning
requests generated per minute by (a) the TDE's event-driven triggering,
(b) a periodic approach with a 5-minute period, and (c) a 10-minute
period, over one day of the production workload. Expected shape: the
periodic baselines are flat at ``fleet / period``; the TDE series sits
well below both on average, peaking when the workload pattern shifts
(the 8–11 AM usage surge).

The default arguments run the paper scale, ``fleet_size=80`` over 24 h;
the bench harness passes a smaller fleet for runtime — the series shapes
are unaffected because every member behaves independently.

Execution model (:mod:`repro.parallel`): fleet members are partitioned
into shards; each shard worker owns its members' databases, workloads,
monitoring agents and TDEs, plus a snapshot of the tuner repository.
Per window every member runs its batch and TDE round inside its shard
(the embarrassingly parallel part), then the coordinator — the single
writer of shared state — replays the per-member outcomes in canonical
member order: samples land in the live repository, the director routes
tuning requests, and fitted configs are shipped back to the owning
shard for application at the start of the next window. Repository
samples reach the shard snapshots one window later via the same
broadcast, under both the sequential and the process backend, which is
why ``--workers N`` is output-invariant.

Wire discipline: the repository snapshot crosses to each shard exactly
once, at session setup. After window 0 the broadcast carries only
deltas — fitted knob values and new training samples, both encoded as
plain float tuples — and the per-member bulk state (each member's knob
values and delta-metric vector) travels through a shared-memory
:class:`~repro.parallel.shm.MemberBank` instead of the result pipe;
steady-state replies name only the members that need tuning. Encoding
is value-exact (python floats in catalog/metric-name order), so every
decoded object equals what a direct object transfer would have carried
and outputs stay byte-identical across worker counts.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.fleet import FleetSpec, build_member
from repro.common.recording import NULL_RECORDER, Recorder
from repro.common.rng import stream_root
from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.core.tde.throttle import Throttle
from repro.dbsim.batch_engine import MemberBatch
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.knobs import KnobCatalog, postgres_catalog
from repro.dbsim.metrics import METRIC_NAMES, MetricsDelta
from repro.experiments.common import offline_train
from repro.obs.trace import TraceRecorder
from repro.parallel import FleetExecutor
from repro.parallel.shm import MemberBank, MemberBankHandle
from repro.parallel.stats import SessionStats
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.ottertune import OtterTuneTuner
from repro.tuners.repository import WorkloadRepository
from repro.workloads.production import ProductionWorkload

__all__ = ["RequestRatePoint", "Fig09Run", "run"]


# -- compact wire codec -----------------------------------------------------
#
# Everything that crosses the pipe after window 0 is built from python
# floats and strings via these helpers, used identically by both
# backends. Decoding against a same-flavor catalog rebuilds objects that
# compare equal to (and compute bit-identically with) the originals.


def _config_values(config: KnobConfiguration) -> tuple[float, ...]:
    """A configuration's knob values in canonical catalog order."""
    return tuple(config[name] for name in config.catalog.names())


def _metric_values(metrics: MetricsDelta) -> tuple[float, ...]:
    """A delta-metric vector's values in canonical metric order."""
    return tuple(metrics.values[name] for name in METRIC_NAMES)


def _decode_config(
    catalog: KnobCatalog, values: tuple[float, ...] | list[float]
) -> KnobConfiguration:
    return KnobConfiguration(catalog, dict(zip(catalog.names(), values)))


def _decode_metrics(values: tuple[float, ...] | list[float]) -> MetricsDelta:
    return MetricsDelta(dict(zip(METRIC_NAMES, values)))


#: Wire form of one training sample: (workload_id, knob values, metric
#: values, timestamp).
_WireSample = tuple[str, tuple[float, ...], tuple[float, ...], float]


def _encode_sample(sample: TrainingSample) -> _WireSample:
    return (
        sample.workload_id,
        _config_values(sample.config),
        _metric_values(sample.metrics),
        sample.timestamp_s,
    )


def _decode_sample(catalog: KnobCatalog, wire: _WireSample) -> TrainingSample:
    workload_id, config_values, metric_values, timestamp_s = wire
    return TrainingSample(
        workload_id,
        _decode_config(catalog, config_values),
        _decode_metrics(metric_values),
        timestamp_s,
    )


@dataclass(frozen=True)
class RequestRatePoint:
    """Requests per minute in one reporting bucket."""

    hour: float
    tde_rpm: float
    periodic_5min_rpm: float
    periodic_10min_rpm: float


@dataclass
class Fig09Run:
    """The three series plus totals."""

    points: list[RequestRatePoint]
    tde_total: int
    periodic_5min_total: int
    periodic_10min_total: int

    def tde_mean_rpm(self) -> float:
        return sum(p.tde_rpm for p in self.points) / len(self.points)

    def tde_peak_hour(self) -> float:
        return max(self.points, key=lambda p: p.tde_rpm).hour


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a shard worker needs to build its members, picklable."""

    fleet: FleetSpec
    repository: WorkloadRepository
    tde_seed: int
    window_s: float
    traced: bool = False
    host_time: bool = False
    #: Shared member-state bank; ``None`` falls back to shipping full
    #: :class:`MemberWindowOut` objects every window (tests).
    bank: MemberBankHandle | None = None


@dataclass(frozen=True)
class WindowCommand:
    """One window's instructions, broadcast to every shard.

    Past window 0 this is the *only* thing a shard receives, and it
    carries no objects — just float tuples (see the wire codec above).
    """

    window_s: float
    #: Fitted knob values from last window's tuning requests (canonical
    #: catalog order), applied to the owning member's master (reload)
    #: before this window's batch runs.
    apply: dict[int, tuple[float, ...]] = field(default_factory=dict)
    #: Wire-encoded samples the coordinator added to the live repository
    #: last window, in canonical order — keeps shard repository snapshots
    #: one window behind the coordinator, identically under every backend.
    new_samples: tuple[_WireSample, ...] = ()


@dataclass
class MemberWindowOut:
    """One member's full window outcome (window 0 and traced runs).

    Window 0 seeds the coordinator's cache of static member facts
    (instance id, workload name, memory budget); traced runs keep the
    full form every window because they also carry trace fragments.
    """

    index: int
    instance_id: str
    workload_name: str
    config: Any
    metrics: Any
    throttles: list[Throttle]
    needs_tuning: bool
    memory_limit_mb: float
    active_connections: int
    fragment: TraceRecorder | None = None


@dataclass(frozen=True)
class MemberTuningOut:
    """Steady-state reply for one member that needs tuning.

    Members that don't need tuning send nothing — their bulk state (knob
    values, metric vector) is already in the member bank.
    """

    index: int
    throttles: tuple[Throttle, ...]


class Fig09ShardWorker:
    """Owns one shard's members; steps them one window at a time."""

    def __init__(self, spec: _ShardSpec, indices: tuple[int, ...]) -> None:
        # Every backend gives the shard its own repository snapshot via an
        # explicit pickle round-trip, so in-process (sequential) shards
        # behave exactly like forked/spawned ones.
        self.repository: WorkloadRepository = pickle.loads(
            pickle.dumps(spec.repository)
        )
        self.spec = spec
        self.indices = tuple(sorted(indices))
        self.members = {i: build_member(spec.fleet, i) for i in self.indices}
        self.tdes = {
            i: ThrottlingDetectionEngine(
                member.instance_id,
                member.deployment.service.master,
                self.repository,
                seed=spec.tde_seed + i,
            )
            for i, member in self.members.items()
        }
        self._engine = MemberBatch(
            [self.members[i].deployment.service.master for i in self.indices]
        )
        self._catalog = self.members[self.indices[0]].deployment.service.master.catalog
        self._bank = spec.bank.attach() if spec.bank is not None else None
        self._windows = 0
        self.clock_s = 0.0

    def step(self, command: WindowCommand) -> list[tuple[int, Any]]:
        for wire in command.new_samples:
            self.repository.add(_decode_sample(self._catalog, wire))
        if self.spec.traced:
            return self._step_traced(command)
        # Columnar hot path (untraced): apply pending configs in member
        # order, generate every member's batch, then step the whole shard
        # through the vectorized engine. Members draw only from their own
        # keyed substreams, so the phase reordering is draw-exact against
        # the serial per-member loop.
        for i in self.indices:
            fitted = command.apply.get(i)
            if fitted is not None:
                master = self.members[i].deployment.service.master
                master.apply_config(
                    _decode_config(master.catalog, fitted), mode="reload"
                )
        batches = [
            self.members[i].workload.batch(
                command.window_s,
                start_time_s=self.clock_s + self.members[i].phase_offset_s,
            )
            for i in self.indices
        ]
        results = self._engine.step_window(batches)
        # Window 0 ships full outs (the coordinator caches the static
        # member facts); afterwards the bank carries the bulk vectors and
        # the pipe names only the members that need tuning.
        compact = self._bank is not None and self._windows > 0
        outs: list[tuple[int, Any]] = []
        for i, result in zip(self.indices, results):
            member = self.members[i]
            master = member.deployment.service.master
            member.monitoring.ingest(result)
            tde = self.tdes[i]
            tde.recorder = NULL_RECORDER
            report = tde.inspect(result)
            if self._bank is not None:
                self._bank.write(
                    i,
                    list(_config_values(result.config)),
                    list(_metric_values(result.metrics)),
                )
            if compact:
                if report.needs_tuning:
                    outs.append(
                        (i, MemberTuningOut(i, tuple(report.throttles)))
                    )
                continue
            outs.append(
                (
                    i,
                    MemberWindowOut(
                        index=i,
                        instance_id=member.instance_id,
                        workload_name=result.batch.workload_name,
                        config=result.config,
                        metrics=result.metrics,
                        throttles=list(report.throttles),
                        needs_tuning=report.needs_tuning,
                        memory_limit_mb=master.vm.db_memory_limit_mb,
                        active_connections=master.active_connections,
                        fragment=None,
                    ),
                )
            )
        self._windows += 1
        self.clock_s += command.window_s
        return outs

    def _step_traced(
        self, command: WindowCommand
    ) -> list[tuple[int, MemberWindowOut]]:
        """Serial per-member loop for traced runs.

        Trace fragments interleave member spans with sim-time advances;
        the golden-trace digests pin that exact ordering, so traced
        windows keep the reference loop.
        """
        outs: list[tuple[int, MemberWindowOut]] = []
        for i in self.indices:
            member = self.members[i]
            master = member.deployment.service.master
            fitted = command.apply.get(i)
            if fitted is not None:
                master.apply_config(
                    _decode_config(master.catalog, fitted), mode="reload"
                )
            tde = self.tdes[i]
            fragment = TraceRecorder(host_time=self.spec.host_time)
            fragment.advance(self.clock_s)
            tde.recorder = fragment
            batch = member.workload.batch(
                command.window_s, start_time_s=self.clock_s + member.phase_offset_s
            )
            result = member.deployment.service.run(batch)
            member.monitoring.ingest(result)
            report = tde.inspect(result)
            outs.append(
                (
                    i,
                    MemberWindowOut(
                        index=i,
                        instance_id=member.instance_id,
                        workload_name=result.batch.workload_name,
                        config=result.config,
                        metrics=result.metrics,
                        throttles=list(report.throttles),
                        needs_tuning=report.needs_tuning,
                        memory_limit_mb=master.vm.db_memory_limit_mb,
                        active_connections=master.active_connections,
                        fragment=fragment,
                    ),
                )
            )
        self.clock_s += command.window_s
        return outs


def _shard_factory(spec: _ShardSpec, indices: tuple[int, ...]) -> Fig09ShardWorker:
    """Top-level factory so every multiprocessing start method can use it."""
    return Fig09ShardWorker(spec, indices)


def run(
    fleet_size: int = 80,
    hours: float = 24.0,
    window_s: float = 300.0,
    bucket_s: float = 3600.0,
    warmup_hours: float = 2.0,
    seed: int = 0,
    recorder: Recorder | None = None,
    workers: int = 1,
    start_method: str | None = None,
    stats: SessionStats | None = None,
    surrogate: bool = False,
    knob_select: bool = False,
) -> Fig09Run:
    """Simulate the fleet for *hours* and count tuning requests.

    TDE members get real recommendations applied (a good recommendation
    suppresses the next throttle, which the paper calls out as directly
    affecting the request rate); periodic counts are analytic
    (``fleet / period``, what a period-driven director would emit).
    A *recorder* (the trace harness) observes the TDE rounds and the
    director's routing; None keeps the no-op default. *workers* selects
    the sharded backend (1: in-process sequential; N: one worker process
    per shard) — output is byte-identical across worker counts. *stats*,
    if given, collects the executor session's pipe-seam accounting
    (bytes and per-phase times per window) without affecting results.
    *surrogate* arms the surrogate screening tier on the director's
    tuner (default off; flag-off output is byte-identical to builds
    without the tier). *knob_select* arms dynamic per-workload knob
    selection the same way (default off, flag-off byte-identical).
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    catalog = postgres_catalog()
    # Bootstrap the tuner with a *stress-rate* offline session: the
    # samples must rank configurations, and good recommendations are what
    # keeps throttles from re-firing (the paper: "if the tuner generates
    # good configuration ... there are pretty less chances of a throttle").
    repository = offline_train(
        catalog,
        [
            ProductionWorkload(
                mean_rps=10_000.0, data_size_gb=30.0, seed=seed + 90,
                name="production-offline",
            )
        ],
        n_configs=14,
        seed=seed + 91,
    )
    paper_scale = fleet_size > 24
    if paper_scale:
        # At paper scale dozens of members bump the shared repository
        # every window; per-version refresh of derived models (decile
        # edges, Lasso rankings) is pointless churn there, so amortisation
        # starts well before the conservative default. Small (bench-scale)
        # fleets keep exact refresh.
        repository.exact_refresh_limit = 500
    tuner = OtterTuneTuner(
        catalog,
        repository,
        n_candidates=150,
        # The shared repository collects dozens of fresh fleet samples per
        # window at paper scale; a tighter (and cheaper, the fit is cubic)
        # training window still spans several windows of recent evidence.
        max_train_samples=150 if paper_scale else 300,
        memory_limit_mb=None,  # repaired per-member below
        seed=seed + 92,
    )
    from repro.core.director.config_director import ConfigDirector
    from repro.core.director.load_balancer import LeastLoadedBalancer, TunerInstance
    from repro.tuners.knob_selection import SelectionPolicy
    from repro.tuners.surrogate import SurrogatePolicy

    tuner.bind_recorder(rec)
    director = ConfigDirector(
        LeastLoadedBalancer([TunerInstance("tuner-00", tuner)]),
        recorder=rec,
        surrogate=SurrogatePolicy() if surrogate else None,
        selection=SelectionPolicy() if knob_select else None,
    )
    # The TDE reads a bounded sample of each member's streaming log; at
    # paper scale a smaller per-window sample keeps the day-long 80-member
    # simulation tractable while the template/class statistics it feeds
    # stay well-populated (64 queries per 5-minute window per member).
    traced = isinstance(rec, TraceRecorder)
    bank = MemberBank.create(
        fleet_size, len(catalog), len(METRIC_NAMES), shared=workers > 1
    )
    spec = _ShardSpec(
        fleet=FleetSpec(
            size=fleet_size,
            flavor="postgres",
            root=stream_root(seed),
            sample_size=64 if paper_scale else 200,
            # Nothing in this experiment reads the monitoring series back;
            # retaining a day of per-second telemetry for 80 members would
            # cost gigabytes, so keep an hour, like a real backend would.
            monitoring_retention_s=3600.0 if paper_scale else None,
        ),
        repository=repository,
        tde_seed=seed,
        window_s=window_s,
        traced=traced,
        host_time=traced and rec.host_time,  # type: ignore[union-attr]
        bank=bank.handle(),
    )
    executor = FleetExecutor(workers=workers, start_method=start_method)
    if stats is not None:
        # The window-0 setup cost. Measured once, at the session
        # boundary — never inside the window loop.
        stats.snapshot_bytes = len(pickle.dumps(repository))

    request_times: list[float] = []
    warmup_end = warmup_hours * 3600.0
    windows = int((hours + warmup_hours) * 3600.0 / window_s)
    clock_s = 0.0
    pending: dict[int, tuple[float, ...]] = {}
    delta: list[_WireSample] = []
    #: Static member facts cached from the window-0 full outs.
    static: dict[int, tuple[str, str, float, int]] = {}
    session = executor.fleet_session(_shard_factory, spec, fleet_size, stats=stats)
    try:
        with session:
            for _ in range(windows):
                now = clock_s - warmup_end
                rec.advance(clock_s)
                with rec.span(
                    "landscape.window", duration_s=window_s, fleet=fleet_size
                ):
                    outs = session.step(
                        WindowCommand(
                            window_s=window_s,
                            apply=pending,
                            new_samples=tuple(delta),
                        )
                    )
                    pending, delta = {}, []
                    for _, out in outs:
                        if isinstance(out, MemberWindowOut):
                            static[out.index] = (
                                out.instance_id,
                                out.workload_name,
                                out.memory_limit_mb,
                                out.active_connections,
                            )
                            if out.fragment is not None:
                                assert isinstance(rec, TraceRecorder)
                                rec.absorb(out.fragment)
                    for idx, out in outs:
                        if isinstance(out, MemberWindowOut):
                            if not out.needs_tuning:
                                continue
                            throttles: list[Throttle] = list(out.throttles)
                            config, metrics = out.config, out.metrics
                            instance_id = out.instance_id
                            workload_name = out.workload_name
                            memory_limit_mb = out.memory_limit_mb
                            active_connections = out.active_connections
                        else:
                            # Steady state: the pipe named the member, the
                            # bank holds its vectors, the cache its facts.
                            throttles = list(out.throttles)
                            (
                                instance_id,
                                workload_name,
                                memory_limit_mb,
                                active_connections,
                            ) = static[idx]
                            config = _decode_config(catalog, bank.config_row(idx))
                            metrics = _decode_metrics(bank.metrics_row(idx))
                        if now >= 0.0:
                            # The fleet converges during warm-up (floors
                            # settle, caps get filtered); counting starts
                            # afterwards, like the paper's long-connected
                            # deployments.
                            request_times.append(now)
                        sample = TrainingSample(workload_name, config, metrics, now)
                        repository.add(sample)
                        delta.append(_encode_sample(sample))
                        actionable = [
                            t for t in throttles if not t.requires_restart
                        ]
                        split = director.handle_tuning_request(
                            TuningRequest(
                                instance_id,
                                workload_name,
                                config,
                                metrics,
                                throttle_class=actionable[0].knob_class.value,
                                throttle_knobs=tuple(
                                    sorted({n for t in actionable for n in t.knobs})
                                ),
                                timestamp_s=now,
                            )
                        )
                        pending[idx] = _config_values(
                            split.reloadable.fitted_to_budget(
                                memory_limit_mb, active_connections
                            )
                        )
                        director.balancer.drain(window_s)
                clock_s += window_s
    finally:
        bank.close()
    if stats is not None:
        # What the pre-delta protocol would have pickled at the last
        # window: the repository with every ingested sample. The honest
        # counterfactual for the delta-only saving.
        stats.final_snapshot_bytes = len(pickle.dumps(repository))

    points: list[RequestRatePoint] = []
    buckets = int(hours * 3600.0 / bucket_s)
    for b in range(buckets):
        start, end = b * bucket_s, (b + 1) * bucket_s
        count = sum(1 for t in request_times if start <= t < end)
        points.append(
            RequestRatePoint(
                hour=start / 3600.0,
                tde_rpm=count / (bucket_s / 60.0),
                periodic_5min_rpm=fleet_size / 5.0,
                periodic_10min_rpm=fleet_size / 10.0,
            )
        )
    minutes = hours * 60.0
    return Fig09Run(
        points=points,
        tde_total=len(request_times),
        periodic_5min_total=int(fleet_size * minutes / 5.0),
        periodic_10min_total=int(fleet_size * minutes / 10.0),
    )
