"""Ablation: fixed full-space tuning vs dynamic per-workload knob selection.

The DOT-style claim behind ``SelectionPolicy``: most workloads are moved
by a small, workload-specific subset of knobs, so tuning inside a
Lasso-ranked active subspace should retain (nearly) all of the
throughput of full-space tuning while touching far fewer knobs — a
smaller space for candidate generation, repair and the GP to cover.

Per workload (TPC-C, YCSB, TPC-H) the study runs two paired arms on one
seed: *fixed* (a stock :class:`~repro.tuners.ottertune.OtterTuneTuner`
over the full catalog) and *dynamic* (the same tuner armed with a
:class:`~repro.tuners.knob_selection.SelectionPolicy`). Both
arms bootstrap from identically-built offline repositories and drive
identically-seeded databases through the same closed recommend/apply
loop, so the only difference is the subspace. The report records each
arm's subspace size and throughput, plus the dynamic arm's *retention*
(its best throughput as a fraction of the fixed arm's).

Everything derives from the seed; :meth:`KnobAblationReport.render` is
byte-identical across runs with equal arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import postgres_catalog
from repro.experiments.common import format_table, offline_train
from repro.tuners.base import TrainingSample, TuningRequest
from repro.tuners.knob_selection import SelectionPolicy
from repro.tuners.ottertune import OtterTuneTuner
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["ArmResult", "KnobAblationReport", "WORKLOAD_NAMES", "run"]

#: The three benchmark workloads the study sweeps, in report order.
WORKLOAD_NAMES = ("tpcc", "ycsb", "tpch")


@dataclass(frozen=True)
class ArmResult:
    """One (workload, arm) cell of the ablation grid."""

    workload: str
    arm: str  # "fixed" | "dynamic"
    subspace_size: int
    total_knobs: int
    best_tps: float
    mean_tps: float


@dataclass
class KnobAblationReport:
    """Paired fixed/dynamic results across the benchmark workloads."""

    seed: int
    iterations: int
    results: list[ArmResult]

    def pair(self, workload: str) -> tuple[ArmResult, ArmResult]:
        """The (fixed, dynamic) pair for *workload*."""
        fixed = next(
            r for r in self.results
            if r.workload == workload and r.arm == "fixed"
        )
        dynamic = next(
            r for r in self.results
            if r.workload == workload and r.arm == "dynamic"
        )
        return fixed, dynamic

    def retention(self, workload: str) -> float:
        """Dynamic best throughput / fixed best throughput."""
        fixed, dynamic = self.pair(workload)
        return dynamic.best_tps / fixed.best_tps if fixed.best_tps > 0 else 1.0

    def render(self) -> str:
        """Fixed-format text report (byte-identical for a given seed)."""
        lines = [
            "knob-selection ablation "
            f"(seed={self.seed} iterations={self.iterations})",
            "",
            format_table(
                ("workload", "arm", "subspace", "total", "best tps", "mean tps"),
                [
                    (
                        r.workload,
                        r.arm,
                        r.subspace_size,
                        r.total_knobs,
                        f"{r.best_tps:.1f}",
                        f"{r.mean_tps:.1f}",
                    )
                    for r in self.results
                ],
            ),
            "",
        ]
        for workload in WORKLOAD_NAMES:
            fixed, dynamic = self.pair(workload)
            lines.append(
                f"{workload}: subspace {dynamic.subspace_size}/"
                f"{fixed.subspace_size} knobs, "
                f"retention {self.retention(workload):.3f}"
            )
        return "\n".join(lines) + "\n"


def _workloads(seed: int) -> list[WorkloadGenerator]:
    """The three benchmarks at stressing offered rates, seeded."""
    return [
        TPCCWorkload(rps=12_000.0, data_size_gb=26.0, seed=seed + 1),
        YCSBWorkload(rps=10_000.0, data_size_gb=20.0, seed=seed + 1),
        TPCHWorkload(rps=8.0, data_size_gb=24.0, seed=seed + 1),
    ]


def _dynamic_policy() -> SelectionPolicy:
    """The dynamic arm's policy.

    Automaton exclusion is off here: this study isolates subspace-vs-
    full-space, and there is no learning automaton in the loop to own
    the async/planner knobs — excluding them would handicap the dynamic
    arm on exactly the (analytic) workloads those knobs move most.
    """
    return SelectionPolicy(exclude_automaton_knobs=False)


def _closed_loop(
    tuner: OtterTuneTuner,
    workload: WorkloadGenerator,
    iterations: int,
    seed: int,
) -> tuple[float, float]:
    """Recommend/apply/measure *iterations* times; return (best, mean) tps.

    Both arms call this with identically-seeded databases and workloads,
    so every difference in the measured series comes from the tuner.
    """
    db = SimulatedDatabase("postgres", "m4.large", workload.data_size_gb, seed=seed)
    measured: list[float] = []
    for _ in range(iterations):
        result = db.run(workload.batch(20.0, start_time_s=db.clock_s))
        tuner.observe(
            TrainingSample(workload.name, db.config, result.metrics, db.clock_s)
        )
        recommendation = tuner.recommend(
            TuningRequest("svc", workload.name, db.config, result.metrics)
        )
        db.apply_config(
            recommendation.config.fitted_to_budget(
                db.vm.db_memory_limit_mb, db.active_connections
            ),
            mode="restart",
        )
        db.run(workload.batch(20.0, start_time_s=db.clock_s))  # warm
        measured.append(
            db.run(workload.batch(20.0, start_time_s=db.clock_s)).throughput
        )
    return max(measured), sum(measured) / len(measured)


def run(seed: int = 0, iterations: int = 6) -> KnobAblationReport:
    """Run the fixed-vs-dynamic ablation; see the module docstring."""
    catalog = postgres_catalog()
    results: list[ArmResult] = []
    for workload in _workloads(seed):
        for arm in ("fixed", "dynamic"):
            # Fresh, identically-built repository per arm: the live loop
            # uploads samples, and sharing one store would leak the first
            # arm's trajectory into the second's recommendations.
            repository = offline_train(
                catalog, [type(workload)(**_workload_kwargs(workload, seed))],
                n_configs=16, seed=seed + 2,
            )
            tuner = OtterTuneTuner(
                catalog,
                repository,
                memory_limit_mb=6553.6,
                seed=seed + 3,
                selection=_dynamic_policy() if arm == "dynamic" else None,
            )
            best_tps, mean_tps = _closed_loop(
                tuner,
                type(workload)(**_workload_kwargs(workload, seed)),
                iterations,
                seed + 10,
            )
            if arm == "dynamic":
                selector = tuner.knob_selector
                assert selector is not None
                subspace_size = len(selector.active_knobs(workload.name))
            else:
                subspace_size = len(catalog)
            results.append(
                ArmResult(
                    workload=workload.name,
                    arm=arm,
                    subspace_size=subspace_size,
                    total_knobs=len(catalog),
                    best_tps=best_tps,
                    mean_tps=mean_tps,
                )
            )
    return KnobAblationReport(seed=seed, iterations=iterations, results=results)


def _workload_kwargs(workload: WorkloadGenerator, seed: int) -> dict[str, float]:
    """Constructor kwargs rebuilding *workload* with fresh draw state."""
    return {
        "rps": workload.rps,
        "data_size_gb": workload.data_size_gb,
        "seed": seed + 1,
    }
