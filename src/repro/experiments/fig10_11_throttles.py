"""Figs. 10–11 — performance throttles by knob class, per workload.

The paper measures raw throttle counts (no tuning session) on m4.large
PostgreSQL (Fig. 10) and MySQL (Fig. 11) for: (a) the write-heavy panel
(TPC-C at 3300 rps / 26 GB), (b) the mix/read-heavy panel (Wikipedia
1000 rps / 12 GB, Twitter 10000 rps / 22 GB, YCSB 5000 rps / 20 GB) and
(c) the production workload, averaging ~20–25 iterations. Expected shape:
write-heavy workloads raise mostly background-writer throttles;
read/mix workloads raise memory and async/planner throttles; production
shows a mixture.

Throttle detection needs tuner experience for the §3.2 baseline, so the
repository is bootstrapped with offline sessions first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tde.engine import ThrottlingDetectionEngine
from repro.dbsim.engine import SimulatedDatabase
from repro.dbsim.knobs import KnobClass, catalog_for
from repro.experiments.common import offline_train
from repro.parallel import FleetExecutor
from repro.tuners.repository import WorkloadRepository
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.production import ProductionWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.twitter import TwitterWorkload
from repro.workloads.wikipedia import WikipediaWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = ["ThrottlePanel", "run", "panel_workloads"]


@dataclass(frozen=True)
class ThrottlePanel:
    """Average throttle counts by class for one workload."""

    workload: str
    memory: float
    background_writer: float
    async_planner: float

    @property
    def dominant_class(self) -> str:
        counts = {
            "memory": self.memory,
            "background_writer": self.background_writer,
            "async_planner": self.async_planner,
        }
        return max(counts, key=counts.get)


def panel_workloads(seed: int = 0) -> dict[str, list[WorkloadGenerator]]:
    """The paper's three panels with its workload parameters."""
    return {
        "write-heavy": [TPCCWorkload(rps=3300.0, data_size_gb=26.0, seed=seed + 1)],
        "mix/read-heavy": [
            WikipediaWorkload(rps=1000.0, data_size_gb=12.0, seed=seed + 2),
            TwitterWorkload(rps=10_000.0, data_size_gb=22.0, seed=seed + 3),
            YCSBWorkload(rps=5000.0, data_size_gb=20.0, seed=seed + 4),
        ],
        "production": [
            ProductionWorkload(mean_rps=487.0, data_size_gb=59.0, seed=seed + 5)
        ],
    }


def measure_throttles(
    workload: WorkloadGenerator,
    flavor: str,
    repository: WorkloadRepository,
    iterations: int = 20,
    window_s: float = 60.0,
    vm: str = "m4.large",
    seed: int = 0,
) -> ThrottlePanel:
    """Average per-iteration throttle counts for one workload."""
    db = SimulatedDatabase(
        flavor, vm, data_size_gb=workload.data_size_gb, seed=seed
    )
    tde = ThrottlingDetectionEngine("svc", db, repository, seed=seed + 1)
    for _ in range(iterations):
        result = db.run(workload.batch(window_s, start_time_s=db.clock_s))
        tde.inspect(result)
    counts = tde.log.count_by_class()
    return ThrottlePanel(
        workload=workload.name,
        memory=counts[KnobClass.MEMORY] / iterations,
        background_writer=counts[KnobClass.BGWRITER] / iterations,
        async_planner=counts[KnobClass.ASYNC_PLANNER] / iterations,
    )


@dataclass(frozen=True)
class _MeasureTask:
    """One panel measurement, picklable for :meth:`FleetExecutor.map`."""

    panel: str
    workload: WorkloadGenerator
    flavor: str
    repository: WorkloadRepository
    iterations: int
    seed: int


def _run_measure(task: _MeasureTask) -> ThrottlePanel:
    return measure_throttles(
        task.workload,
        task.flavor,
        task.repository,
        iterations=task.iterations,
        seed=task.seed,
    )


def run(
    flavor: str = "postgres",
    iterations: int = 20,
    seed: int = 0,
    workers: int = 1,
    start_method: str | None = None,
) -> dict[str, list[ThrottlePanel]]:
    """Reproduce one figure (Fig. 10 for postgres, Fig. 11 for mysql).

    The five measurements are independent given the trained repository
    (the TDE only reads it), so *workers* fans them out across processes;
    results come back in panel order regardless of the worker count.
    """
    catalog = catalog_for(flavor)
    panels = panel_workloads(seed=seed)
    training = [
        TPCCWorkload(rps=3300.0, data_size_gb=26.0, seed=seed + 11),
        YCSBWorkload(rps=5000.0, data_size_gb=20.0, seed=seed + 12),
    ]
    executor = FleetExecutor(workers=workers, start_method=start_method)
    repository = offline_train(
        catalog, training, n_configs=10, seed=seed + 13, executor=executor
    )
    tasks = [
        _MeasureTask(
            panel=panel_name,
            workload=workload,
            flavor=flavor,
            repository=repository,
            iterations=iterations,
            seed=seed + 20 + i,
        )
        for panel_name, workloads in panels.items()
        for i, workload in enumerate(workloads)
    ]
    out: dict[str, list[ThrottlePanel]] = {name: [] for name in panels}
    for task, panel in zip(tasks, executor.map(_run_measure, tasks)):
        out[task.panel].append(panel)
    return out
