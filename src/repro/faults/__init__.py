"""Deterministic fault injection for the AutoDBaaS control plane.

The paper sells AutoDBaaS as safe to run against live production
databases (§4: slave-first apply, reconciler, persisted configs). This
package supplies the adversary that claim is tested against: a seeded
:class:`FaultPlan` compiled from a master seed via
:func:`repro.common.rng.make_rng`, and thin injection shims wrapped
around the tuner instances, the DFA's database adapters and the
monitoring agents. Same seed ⇒ same fault schedule ⇒ byte-identical
chaos reports.

Nothing in ``repro.core`` imports this package — the control plane is
hardened against *interfaces misbehaving* (a tuner raising
``TunerUnavailable``, an adapter reporting a failed apply, a monitoring
window with no telemetry), and these shims are just one deterministic way
to make the interfaces misbehave.
"""

from repro.faults.injectors import (
    FaultInjector,
    FaultyAdapter,
    FaultyMonitoringAgent,
    FaultyTuner,
    strip_telemetry,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultyAdapter",
    "FaultyMonitoringAgent",
    "FaultyTuner",
    "strip_telemetry",
]
