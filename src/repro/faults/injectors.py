"""Injection shims: wrappers that make healthy components misbehave.

Each shim wraps one control-plane dependency — a :class:`Tuner`, a
:class:`DatabaseAdapter`, a :class:`MonitoringAgent` — and consults a
shared :class:`FaultInjector` (plan + simulated clock) on every call.
With an empty plan every shim is a transparent pass-through, so a
fault-free chaos run is byte-identical to an unshimmed one.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.monitoring import MonitoringAgent
from repro.common.recording import NULL_RECORDER, Recorder
from repro.common.rng import derive_rng, make_rng
from repro.common.timeseries import TimeSeries
from repro.core.apply.adapters import DatabaseAdapter, NodeApplyResult
from repro.dbsim.config import KnobConfiguration
from repro.dbsim.engine import ExecutionResult, SimulatedDatabase
from repro.dbsim.knobs import KnobClass
from repro.dbsim.storage import DiskWindowResult
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.tuners.base import (
    Recommendation,
    TrainingSample,
    Tuner,
    TunerUnavailable,
    TuningRequest,
    config_to_vector,
    vector_to_config,
)

if TYPE_CHECKING:
    from repro.tuners.knob_selection import SelectionPolicy
    from repro.tuners.surrogate import SurrogatePolicy

__all__ = [
    "FaultInjector",
    "InjectionRecord",
    "FaultyTuner",
    "FaultyAdapter",
    "FaultyMonitoringAgent",
    "strip_telemetry",
]


@dataclass(frozen=True)
class InjectionRecord:
    """One fault actually delivered (not merely scheduled)."""

    time_s: float
    kind: FaultKind
    target: str


@dataclass
class FaultInjector:
    """Shared plan + simulated clock every shim consults.

    The chaos harness calls :meth:`advance` once per monitoring window;
    shims then ask :meth:`hit` whether a given fault kind is active for
    their target *now*, and every delivered fault is logged for the
    report.
    """

    plan: FaultPlan
    now_s: float = 0.0
    enabled: bool = True
    log: list[InjectionRecord] = field(default_factory=list)
    #: Observability seam: delivered faults emit ``fault.delivered``
    #: events and count into ``repro_faults_delivered_total``.
    recorder: Recorder = field(default=NULL_RECORDER)

    def advance(self, now_s: float) -> None:
        """Move the injector's clock to simulated *now_s*."""
        self.now_s = now_s

    def hit(self, kind: FaultKind, target: str) -> FaultEvent | None:
        """The active event of *kind* for *target*, recording delivery."""
        if not self.enabled:
            return None
        event = self.plan.active(kind, target, self.now_s)
        if event is not None:
            self.log.append(InjectionRecord(self.now_s, kind, target))
            self.recorder.event(
                "fault.delivered", kind=kind.value, target=target
            )
            self.recorder.inc(
                "repro_faults_delivered_total", kind=kind.value
            )
        return event

    def delivered(self, kind: FaultKind) -> int:
        """How many faults of *kind* have actually been delivered."""
        return sum(1 for record in self.log if record.kind is kind)


class FaultyTuner(Tuner):
    """A tuner whose deployment suffers outages, slowdowns — or goes rogue.

    Under an active :attr:`~repro.faults.plan.FaultKind.BAD_RECOMMENDATION`
    event the shim lets the inner tuner answer, then adversarially
    rewrites the recommendation: every tunable (reloadable) knob is
    pushed toward a pathological extreme in the normalised knob space —
    working-memory knobs toward their minimum (forcing spills), the
    rest toward a seeded-random end of their range — scaled by the
    event's magnitude. The perturbation RNG is derived lazily from
    ``(seed, tuner_id)`` on the first delivered event, so a run whose
    plan never delivers one draws nothing and stays byte-identical to
    an unshimmed run.
    """

    def __init__(
        self,
        inner: Tuner,
        injector: FaultInjector,
        tuner_id: str,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.tuner_id = tuner_id
        self.seed = seed
        self.name = inner.name
        self._adversarial_rng: np.random.Generator | None = None

    def observe(self, sample: TrainingSample) -> None:
        self.inner.observe(sample)

    def learn(self, sample: TrainingSample) -> None:
        self.inner.learn(sample)

    def bind_recorder(self, recorder: Recorder) -> None:
        self.recorder = recorder
        self.inner.bind_recorder(recorder)

    def recommend(self, request: TuningRequest) -> Recommendation:
        if self.injector.hit(FaultKind.TUNER_OUTAGE, self.tuner_id):
            raise TunerUnavailable(
                f"injected outage: tuner {self.tuner_id} is down"
            )
        recommendation = self.inner.recommend(request)
        event = self.injector.hit(FaultKind.BAD_RECOMMENDATION, self.tuner_id)
        if event is not None:
            recommendation.config = self._perturbed(
                recommendation.config, event.magnitude
            )
        return recommendation

    def recommendation_cost_s(self) -> float:
        cost = self.inner.recommendation_cost_s()
        event = self.injector.hit(FaultKind.SLOW_RECOMMENDATION, self.tuner_id)
        return cost * event.magnitude if event is not None else cost

    def configure_surrogate(self, policy: "SurrogatePolicy") -> bool:
        """Forward surrogate screening to the inner tuner.

        The shim only perturbs *delivered* recommendations; whether the
        inner tuner screens its candidate set is orthogonal to fault
        delivery, so the offer passes straight through.
        """
        return self.inner.configure_surrogate(policy)

    def configure_selection(self, policy: "SelectionPolicy") -> bool:
        """Forward dynamic knob selection to the inner tuner.

        Same reasoning as :meth:`configure_surrogate`: which subspace
        the inner tuner optimises over is orthogonal to whether the
        delivered recommendation gets perturbed.
        """
        return self.inner.configure_selection(policy)

    def _perturbed(
        self, config: KnobConfiguration, magnitude: float
    ) -> KnobConfiguration:
        """Push every tunable knob toward an adversarial extreme."""
        if self._adversarial_rng is None:
            self._adversarial_rng = derive_rng(
                make_rng(self.seed), self.tuner_id
            )
        rng = self._adversarial_rng
        vector = config_to_vector(config)
        target = vector.copy()
        for i, knob in enumerate(config.catalog):
            if knob.restart_required:
                continue  # the reload path never moves these anyway
            if knob.knob_class is KnobClass.MEMORY:
                extreme = 0.0  # starve the working areas: spills everywhere
            else:
                extreme = 0.0 if float(rng.random()) < 0.5 else 1.0
            target[i] = vector[i] + (extreme - vector[i]) * magnitude
        raw = vector_to_config(target, config.catalog)
        updates = {
            knob.name: raw[knob.name]
            for knob in config.catalog
            if not knob.restart_required
        }
        return config.with_values(updates)


class FaultyAdapter(DatabaseAdapter):
    """An adapter whose applies fail transiently or crash mid-apply.

    A DFA holds *one* adapter for every service it touches, so the shim
    resolves the fault target per call: nodes registered through
    :meth:`register_service` map to their service's instance id, anything
    unregistered falls back to the constructor's ``service_id``.
    """

    def __init__(
        self,
        inner: DatabaseAdapter,
        injector: FaultInjector,
        service_id: str = "*",
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.service_id = service_id
        self.flavor = inner.flavor
        self._node_targets: dict[int, str] = {}

    def register_service(
        self, service_id: str, nodes: Iterable[SimulatedDatabase]
    ) -> None:
        """Map *nodes* (an iterable of databases) to *service_id*."""
        for node in nodes:
            self._node_targets[id(node)] = service_id

    def _target(self, node: SimulatedDatabase) -> str:
        return self._node_targets.get(id(node), self.service_id)

    def apply(
        self,
        node: SimulatedDatabase,
        config: KnobConfiguration,
        mode: str = "reload",
    ) -> NodeApplyResult:
        target = self._target(node)
        if self.injector.hit(FaultKind.APPLY_FAILURE, target):
            return NodeApplyResult(
                ok=False,
                crashed=False,
                skipped_restart_required=(),
                error=f"injected transient apply failure on {target}",
            )
        if self.injector.hit(FaultKind.APPLY_CRASH, target):
            # Crash *mid*-apply: the config lands, then the process dies —
            # the worst case for §4's protocol, leaving both a down node
            # and config drift for the DFA/reconciler to clean up.
            result = self.inner.apply(node, config, mode=mode)
            if result.crashed:
                return result
            node.crashed = True
            return NodeApplyResult(
                ok=False,
                crashed=True,
                skipped_restart_required=result.skipped_restart_required,
                error=f"injected crash mid-apply on {target}",
            )
        return self.inner.apply(node, config, mode=mode)

    def read_config(self, node: SimulatedDatabase) -> KnobConfiguration:
        return self.inner.read_config(node)


def strip_telemetry(result: ExecutionResult) -> ExecutionResult:
    """The window as seen through a dead telemetry pipe.

    Disk latency/IOPS series come from external monitoring (§3.2); when
    that pipeline is down the TDE sees a window with *no* disk series —
    the degraded-mode input detectors must survive. Database-side
    observables (the query log, plans, throughput) are unaffected.
    """
    empty = DiskWindowResult(
        read_latency=TimeSeries("data.read_latency_ms", "ms"),
        write_latency=TimeSeries("data.write_latency_ms", "ms"),
        iops=TimeSeries("data.iops", "ops/s"),
        mean_utilisation=0.0,
    )
    empty_wal = DiskWindowResult(
        read_latency=TimeSeries("wal.read_latency_ms", "ms"),
        write_latency=TimeSeries("wal.write_latency_ms", "ms"),
        iops=TimeSeries("wal.iops", "ops/s"),
        mean_utilisation=0.0,
    )
    return dataclasses.replace(result, data_disk=empty, wal_disk=empty_wal)


class FaultyMonitoringAgent(MonitoringAgent):
    """A monitoring agent whose ingest pipeline can drop windows."""

    def __init__(
        self,
        instance_id: str,
        injector: FaultInjector,
        retention_s: float | None = None,
    ) -> None:
        super().__init__(instance_id, retention_s=retention_s)
        self.injector = injector
        self.gap_windows = 0

    def _gapped(self) -> bool:
        return (
            self.injector.hit(FaultKind.TELEMETRY_GAP, self.instance_id)
            is not None
        )

    def ingest(self, result: ExecutionResult) -> None:
        if self._gapped():
            self.gap_windows += 1
            return
        super().ingest(result)

    def filter_result(self, result: ExecutionResult) -> ExecutionResult:
        if self._gapped():
            return strip_telemetry(result)
        return result
