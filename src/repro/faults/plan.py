"""Fault plans: seeded, scripted schedules of control-plane faults.

A :class:`FaultPlan` is an immutable list of :class:`FaultEvent` windows
in *simulated* time. Plans are either hand-scripted (unit tests) or
compiled from a seed with :meth:`FaultPlan.compile`, which draws every
start time, duration, target and magnitude from one
:func:`~repro.common.rng.make_rng` stream — the same seed always yields
the same schedule, which is what makes chaos reports byte-identical
across runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.rng import make_rng

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    """The injectable fault taxonomy."""

    #: A tuner instance is down: ``recommend`` raises ``TunerUnavailable``.
    TUNER_OUTAGE = "tuner_outage"
    #: A tuner instance answers, but its recommendation cost is inflated
    #: by ``magnitude`` (a GPR retrain on an overloaded deployment).
    SLOW_RECOMMENDATION = "slow_recommendation"
    #: The adapter's apply call fails transiently (connection refused);
    #: the node is untouched and a retry may succeed.
    APPLY_FAILURE = "apply_failure"
    #: The adapter crashes the node mid-apply: the new config lands but
    #: the process dies, leaving drift for the reconciler.
    APPLY_CRASH = "apply_crash"
    #: The monitoring pipeline loses the window's disk telemetry.
    TELEMETRY_GAP = "telemetry_gap"
    #: The service VM's disks degrade: latency multiplied by ``magnitude``.
    DISK_DEGRADATION = "disk_degradation"
    #: A tuner answers, but adversarially: its recommendation's tunable
    #: knobs are pushed toward pathological extremes (working memory
    #: starved, the rest seeded-random), ``magnitude`` (0..1) scaling how
    #: far. The worst case safe online tuning must survive.
    BAD_RECOMMENDATION = "bad_recommendation"


#: Compile-time draw ranges per kind: (min duration, max duration,
#: min magnitude, max magnitude), durations as a fraction of the window.
_KIND_PROFILES: dict[FaultKind, tuple[float, float, float, float]] = {
    FaultKind.TUNER_OUTAGE: (2.0, 5.0, 1.0, 1.0),
    FaultKind.SLOW_RECOMMENDATION: (2.0, 6.0, 3.0, 10.0),
    FaultKind.APPLY_FAILURE: (1.0, 3.0, 1.0, 1.0),
    FaultKind.APPLY_CRASH: (1.0, 1.0, 1.0, 1.0),
    FaultKind.TELEMETRY_GAP: (2.0, 5.0, 1.0, 1.0),
    FaultKind.DISK_DEGRADATION: (2.0, 4.0, 2.0, 6.0),
    FaultKind.BAD_RECOMMENDATION: (3.0, 8.0, 0.7, 1.0),
}


@dataclass(frozen=True)
class FaultEvent:
    """One fault window against one target.

    ``target`` names a tuner instance (tuner faults), a service instance
    (apply/telemetry/disk faults), or ``"*"`` for every target of the
    kind. The event is active for ``start_s <= now < start_s + duration_s``.
    """

    kind: FaultKind
    target: str
    start_s: float
    duration_s: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, target: str, now_s: float) -> bool:
        """Whether this event hits *target* at *now_s*."""
        if self.target not in ("*", target):
            return False
        return self.start_s <= now_s < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of fault events."""

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.start_s, e.kind.value, e.target),
            )
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def active(
        self, kind: FaultKind, target: str, now_s: float
    ) -> FaultEvent | None:
        """The first active event of *kind* against *target*, if any."""
        for event in self.events:
            if event.kind is kind and event.active(target, now_s):
                return event
        return None

    def by_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        """All scheduled events of one kind."""
        return tuple(e for e in self.events if e.kind is kind)

    def last_fault_end_s(self) -> float:
        """When the final scheduled fault clears (0.0 for an empty plan)."""
        return max((e.end_s for e in self.events), default=0.0)

    @staticmethod
    def compile(
        seed: int | np.random.Generator,
        tuner_ids: Sequence[str],
        service_ids: Sequence[str],
        window_s: float = 300.0,
        start_window: int = 4,
        end_window: int = 16,
        events_per_kind: int = 1,
        kinds: Sequence[FaultKind] | None = None,
    ) -> "FaultPlan":
        """Compile a randomized-but-deterministic schedule from *seed*.

        Every kind in *kinds* (default: all six) gets *events_per_kind*
        events, each targeting one deterministic draw from the matching
        id pool, starting inside ``[start_window, end_window)`` windows
        and lasting/degrading per the kind's profile. Events land only
        inside the configured window span, so callers can leave the tail
        of a run fault-free to measure recovery.
        """
        if end_window <= start_window:
            raise ValueError("end_window must exceed start_window")
        rng = make_rng(seed)
        chosen = tuple(kinds) if kinds is not None else tuple(FaultKind)
        events: list[FaultEvent] = []
        for kind in chosen:
            tuner_kinds = (
                FaultKind.TUNER_OUTAGE,
                FaultKind.SLOW_RECOMMENDATION,
                FaultKind.BAD_RECOMMENDATION,
            )
            pool = (
                tuple(tuner_ids)
                if kind in tuner_kinds
                else tuple(service_ids)
            )
            if not pool:
                continue
            lo_d, hi_d, lo_m, hi_m = _KIND_PROFILES[kind]
            for _ in range(events_per_kind):
                target = pool[int(rng.integers(0, len(pool)))]
                start = float(rng.integers(start_window, end_window)) * window_s
                duration = float(rng.uniform(lo_d, hi_d)) * window_s
                # Clip so the schedule never outlives the fault phase.
                duration = min(duration, end_window * window_s - start)
                duration = max(duration, window_s)
                magnitude = float(rng.uniform(lo_m, hi_m))
                events.append(
                    FaultEvent(kind, target, start, duration, magnitude)
                )
        return FaultPlan(tuple(events))
