"""Command-line interface: run experiments and demos from the shell.

Usage (installed as ``repro`` or via ``python -m repro``)::

    repro list                         # list reproducible figures
    repro run fig02                    # regenerate one figure's data
    repro run fig09 --fleet-size 80 --hours 24   # paper scale
    repro demo quickstart              # run an example scenario
    repro trace chaos                  # record a deterministic trace
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.experiments import (
    ablations,
    fig02_memory_table,
    fig03_04_entropy,
    fig05_disk_latency,
    fig06_mdp_learning,
    fig07_reload_iops,
    fig08_arrival_rate,
    fig09_requests_per_minute,
    fig10_11_throttles,
    fig12_13_throughput,
    fig14_workload_shift,
    fig15_accuracy,
    format_table,
)

__all__ = ["main"]


def _run_fig02(args: argparse.Namespace) -> None:
    rows = fig02_memory_table.run(seed=args.seed)
    print(
        format_table(
            ("workload", "work_mem MB", "memory MB", "disk MB"),
            [
                (r.workload, r.work_mem_allocated_mb, r.memory_used_mb, r.disk_used_mb)
                for r in rows
            ],
        )
    )


def _run_entropy(args: argparse.Namespace) -> None:
    points = fig03_04_entropy.run(
        adulteration_p=args.adulteration, windows=args.windows, seed=args.seed
    )
    print(
        format_table(
            ("window", "tpcc", "adulterated"),
            [
                (p.window, f"{p.entropy_tpcc:.3f}", f"{p.entropy_adulterated:.3f}")
                for p in points
            ],
        )
    )


def _run_fig05(args: argparse.Namespace) -> None:
    run = fig05_disk_latency.run(seed=args.seed)
    print(
        f"default write latency: mean {run.default_mean_ms:.2f} ms, "
        f"max {run.default_latency.max():.2f} ms"
    )
    print(
        f"tuned   write latency: mean {run.tuned_mean_ms:.2f} ms, "
        f"max {run.tuned_latency.max():.2f} ms"
    )


def _run_fig06(args: argparse.Namespace) -> None:
    run = fig06_mdp_learning.run(seed=args.seed)
    print(
        format_table(
            ("episode", "reward", "accuracy"),
            [
                (i, f"{r:.4f}", f"{a:.3f}")
                for i, (r, a) in enumerate(
                    zip(run.episodic_rewards, run.accuracies)
                )
            ],
        )
    )


def _run_fig07(args: argparse.Namespace) -> None:
    comparison = fig07_reload_iops.run(seed=args.seed)
    for name, report in (
        ("no reload", comparison.no_reload),
        ("reload signal", comparison.reload_signal),
        ("socket activation", comparison.socket_activation),
    ):
        print(
            f"{name:18s} mean tps {report.mean_tps:8.0f}"
            f"  relative {comparison.relative_tps(report):.3f}"
        )


def _run_fig08(args: argparse.Namespace) -> None:
    points = fig08_arrival_rate.run(seed=args.seed)
    print(
        format_table(
            ("hour", "queries", "rate/s"),
            [(p.hour, p.queries, f"{p.rate_per_s:.0f}") for p in points],
        )
    )
    print(f"daily total: {fig08_arrival_rate.daily_total(points):,}")


def _run_fig09(args: argparse.Namespace) -> None:
    run = fig09_requests_per_minute.run(
        fleet_size=args.fleet_size, hours=args.hours, seed=args.seed,
        workers=args.workers, surrogate=args.surrogate,
        knob_select=args.knob_select,
    )
    print(
        format_table(
            ("hour", "TDE rpm", "5min rpm", "10min rpm"),
            [
                (f"{p.hour:.0f}", f"{p.tde_rpm:.2f}",
                 f"{p.periodic_5min_rpm:.2f}", f"{p.periodic_10min_rpm:.2f}")
                for p in run.points
            ],
        )
    )
    print(
        f"totals: TDE {run.tde_total} vs 5-min {run.periodic_5min_total}"
        f" vs 10-min {run.periodic_10min_total}"
    )


def _run_fig10(args: argparse.Namespace) -> None:
    panels = fig10_11_throttles.run(
        flavor=args.flavor, seed=args.seed, workers=args.workers
    )
    rows = [
        (panel, r.workload, f"{r.memory:.2f}", f"{r.background_writer:.2f}",
         f"{r.async_planner:.2f}")
        for panel, results in panels.items()
        for r in results
    ]
    print(
        format_table(
            ("panel", "workload", "memory", "bgwriter", "async/planner"), rows
        )
    )


def _run_fig12(args: argparse.Namespace) -> None:
    series = fig12_13_throughput.run(
        tuner_kind=args.tuner, flavor=args.flavor, hours=args.hours,
        seed=args.seed,
    )
    print(
        format_table(
            ("hour", "gated tps", "ungated tps"),
            [
                (f"{h:.0f}", f"{g:.0f}", f"{u:.0f}")
                for h, g, u in zip(series.hours, series.gated_tps, series.ungated_tps)
            ],
        )
    )
    print(
        f"requests: gated {series.gated_requests} vs ungated"
        f" {series.ungated_requests}; daytime advantage"
        f" {series.gated_advantage:.2f}x"
    )


def _run_fig14(args: argparse.Namespace) -> None:
    results = fig14_workload_shift.run(seed=args.seed)
    print(
        format_table(
            ("#", "transition", "throttles", "classes"),
            [
                (r.spec.number, f"{r.spec.source}->{r.spec.target}",
                 r.throttles_total, ",".join(r.observed_classes()) or "-")
                for r in results
            ],
        )
    )


def _run_fig15(args: argparse.Namespace) -> None:
    result = fig15_accuracy.run(seed=args.seed)
    for cls in ("memory", "background_writer", "async_planner"):
        accuracy = result.accuracy(cls)
        rendered = f"{accuracy:.2f}" if accuracy is not None else "-"
        print(f"{cls:18s} accuracy {rendered} ({result.total.get(cls, 0)} throttles)")


def _run_ablations(args: argparse.Namespace) -> None:
    print(ablations.ablate_entropy_filter())
    print(ablations.ablate_mapping_growth())
    print(ablations.ablate_slave_first())


_EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], None]]] = {
    "fig02": ("Fig. 2 memory table", _run_fig02),
    "fig03": ("Fig. 3/4 entropy variation", _run_entropy),
    "fig05": ("Fig. 5 disk latency default vs tuned", _run_fig05),
    "fig06": ("Fig. 6 MDP learning curves", _run_fig06),
    "fig07": ("Fig. 7 reload-signal IOPS", _run_fig07),
    "fig08": ("Fig. 8 production arrival rate", _run_fig08),
    "fig09": ("Fig. 9 tuning requests per minute", _run_fig09),
    "fig10": ("Fig. 10/11 throttles by class", _run_fig10),
    "fig12": ("Fig. 12/13 gated vs ungated throughput", _run_fig12),
    "fig14": ("Table 1 + Fig. 14 workload transitions", _run_fig14),
    "fig15": ("Fig. 15 throttle accuracy", _run_fig15),
    "ablations": ("DESIGN.md ablations", _run_ablations),
}

_DEMOS = (
    "quickstart",
    "paas_fleet",
    "workload_shift",
    "downtime_maintenance",
    "tuner_comparison",
)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoDBaaS (EDBT 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run = sub.add_parser("run", help="regenerate one experiment")
    run.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--fleet-size", type=int, default=16, dest="fleet_size")
    run.add_argument("--hours", type=float, default=12.0)
    run.add_argument("--windows", type=int, default=20)
    run.add_argument("--adulteration", type=float, default=0.8)
    run.add_argument("--flavor", choices=("postgres", "mysql"), default="postgres")
    run.add_argument("--tuner", choices=("ottertune", "cdbtune"), default="ottertune")
    run.add_argument(
        "--workers", type=_positive_int, default=1,
        help="parallel worker processes (fig09/fig10 only; output is "
        "byte-identical for any worker count)",
    )
    run.add_argument(
        "--surrogate", action="store_true",
        help="arm the surrogate screening tier on the tuner (fig09 "
        "only): a coreset-GP prefilter shortlists candidates before "
        "the exact GP scores them; deterministic, off by default",
    )
    run.add_argument(
        "--knob-select", action="store_true", dest="knob_select",
        help="arm dynamic per-workload knob selection on the tuner "
        "(fig09 only): a Lasso-ranked active subspace narrows what "
        "each workload tunes; deterministic, off by default",
    )

    demo = sub.add_parser("demo", help="run an example scenario")
    demo.add_argument("name", choices=_DEMOS)

    chaos = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection recovery experiment",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fleet-size", type=_positive_int, default=3, dest="fleet_size"
    )
    chaos.add_argument("--windows", type=_positive_int, default=28)
    chaos.add_argument(
        "--quick", action="store_true",
        help="small fleet / short horizon (CI determinism check)",
    )
    chaos.add_argument(
        "--workers", type=_positive_int, default=1,
        help="parallel worker processes (the two landscapes run "
        "concurrently; the report is byte-identical either way)",
    )
    chaos.add_argument(
        "--surrogate", action="store_true",
        help="arm surrogate candidate screening on both landscapes' "
        "tuners (standard profile only; deterministic, off by default)",
    )
    chaos.add_argument(
        "--knob-select", action="store_true", dest="knob_select",
        help="arm dynamic per-workload knob selection on both "
        "landscapes' tuners (standard profile only; deterministic, "
        "off by default)",
    )
    chaos.add_argument(
        "--profile", choices=("standard", "adversarial"), default="standard",
        help="standard: the six-kind fault recovery experiment; "
        "adversarial: a rogue tuner versus the safety governor "
        "(bounded steps, canary-on-slave, auto-revert)",
    )

    trace = sub.add_parser(
        "trace",
        help="run an experiment under the trace recorder and export it",
    )
    trace.add_argument(
        "experiment",
        choices=("chaos", "fleet"),
        help="what to trace: the quick chaos profile or a small live fleet",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--out", default="artifacts/trace",
        help="output prefix: writes <out>.jsonl and <out>.chrome.json "
        "(default: artifacts/trace; parent directories are created)",
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="measure host time per span and print the profile table",
    )
    trace.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry in Prometheus text format",
    )
    trace.add_argument(
        "--fleet-size", type=_positive_int, default=3, dest="fleet_size",
        help="fleet experiment only: live fleet size",
    )
    trace.add_argument(
        "--hours", type=float, default=1.0,
        help="fleet experiment only: simulated hours after warm-up",
    )
    trace.add_argument(
        "--warmup-hours", type=float, default=0.5, dest="warmup_hours",
        help="fleet experiment only: warm-up hours before counting",
    )
    trace.add_argument(
        "--workers", type=_positive_int, default=1,
        help="parallel worker processes; the exported trace is "
        "byte-identical for any worker count",
    )
    trace.add_argument(
        "--surrogate", action="store_true",
        help="arm surrogate candidate screening in the traced "
        "experiment (deterministic, off by default)",
    )
    trace.add_argument(
        "--knob-select", action="store_true", dest="knob_select",
        help="arm dynamic per-workload knob selection in the traced "
        "experiment (deterministic, off by default)",
    )

    ablate = sub.add_parser(
        "ablate",
        help="run an ablation study and print its deterministic report",
    )
    ablate.add_argument(
        "target", choices=("knobs",),
        help="knobs: fixed full-space tuning vs dynamic per-workload "
        "knob selection across tpcc/ycsb/tpch on one seed",
    )
    ablate.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="run the repro static invariant checker"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="output format",
    )
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="also run the interprocedural rules (R009-R012): builds a "
        "whole-program index, dataflow pass and call graph once, then "
        "checks shard-divergence invariants across function boundaries",
    )
    lint.add_argument(
        "--changed-only", action="store_true", dest="changed_only",
        help="lint only files changed vs the git merge-base with the "
        "default branch (plus untracked files); falls back to the "
        "given paths when git is unavailable",
    )
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    # Imported lazily: `repro run`/`repro demo` should not pay for (or
    # depend on) the analysis package.
    from pathlib import Path

    from repro.analysis import Linter, all_rules, render

    if args.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.id}  [{rule_cls.severity.value}]  {rule_cls.title}")
        return 0
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    try:
        linter = Linter(select=select, deep=args.deep)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.changed_only:
        changed = _changed_python_files(paths)
        if changed is not None:
            paths = changed
    findings = linter.lint_paths(paths)
    print(render(findings, args.fmt))
    return 1 if findings else 0


def _changed_python_files(paths: "list[Path]") -> "list[Path] | None":
    """Python files under *paths* changed vs the default-branch merge-base.

    The fast pre-commit path: the working tree's diff against the
    merge-base with ``origin/main`` (first of origin/main, origin/master,
    main, master that resolves), plus untracked files. Returns ``None``
    — lint everything — when git is unavailable or errors, so
    ``--changed-only`` can never *hide* findings by failing silently.
    """
    import subprocess
    from pathlib import Path

    def git(*argv: str) -> str:
        result = subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=False
        )
        if result.returncode != 0:
            raise OSError(result.stderr.strip())
        return result.stdout

    try:
        base = ""
        for ref in ("origin/main", "origin/master", "main", "master"):
            try:
                base = git("merge-base", "HEAD", ref).strip()
                break
            except OSError:
                continue
        names = set(
            git("diff", "--name-only", base or "HEAD").splitlines()
        )
        names.update(
            git("ls-files", "--others", "--exclude-standard").splitlines()
        )
        toplevel = Path(git("rev-parse", "--show-toplevel").strip())
    except OSError:
        return None
    roots = [p.resolve() for p in paths]
    changed: list[Path] = []
    for name in sorted(names):
        candidate = toplevel / name
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        resolved = candidate.resolve()
        if any(
            resolved == root or root in resolved.parents for root in roots
        ):
            changed.append(candidate)
    return changed


def _run_trace(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the chaos and fleet drivers.
    from pathlib import Path

    from repro.experiments import trace_run

    artifacts = trace_run.run(
        experiment=args.experiment,
        seed=args.seed,
        host_time=args.profile,
        fleet_size=args.fleet_size,
        hours=args.hours,
        warmup_hours=args.warmup_hours,
        workers=args.workers,
        surrogate=args.surrogate,
        knob_select=args.knob_select,
    )
    jsonl_path = Path(f"{args.out}.jsonl")
    chrome_path = Path(f"{args.out}.chrome.json")
    jsonl_path.parent.mkdir(parents=True, exist_ok=True)
    jsonl_path.write_text(artifacts.jsonl)
    chrome_path.write_text(artifacts.chrome_json)
    print(artifacts.summary(), end="")
    print(f"wrote: {jsonl_path} {chrome_path}")
    if args.profile:
        print()
        print(artifacts.profile_table, end="")
        if artifacts.pipe_table:
            print()
            print(artifacts.pipe_table, end="")
    if args.metrics:
        print()
        print(artifacts.metrics_text, end="")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Piped into head/less that closed early — not an error.
        import os

        os.close(sys.stderr.fileno())
        return 0


def _dispatch(argv: Sequence[str] | None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name, (description, _) in sorted(_EXPERIMENTS.items()):
            print(f"{name:10s} {description}")
        return 0
    if args.command == "run":
        try:
            _EXPERIMENTS[args.experiment][1](args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "chaos":
        # Imported lazily like the analysis package: the chaos harness
        # pulls in the whole faults layer.
        if args.profile == "adversarial":
            from repro.experiments import chaos_adversarial

            adversarial = chaos_adversarial.run(
                fleet_size=args.fleet_size,
                windows=args.windows,
                seed=args.seed,
                quick=args.quick,
                workers=args.workers,
            )
            print(adversarial.render(), end="")
            return 0
        from repro.experiments import chaos_recovery

        report = chaos_recovery.run(
            fleet_size=args.fleet_size,
            windows=args.windows,
            seed=args.seed,
            quick=args.quick,
            workers=args.workers,
            surrogate=args.surrogate,
            knob_select=args.knob_select,
        )
        print(report.render(), end="")
        return 0
    if args.command == "ablate":
        # Imported lazily: the study builds live landscapes per arm.
        from repro.experiments import ablation_knob_selection

        ablation = ablation_knob_selection.run(seed=args.seed)
        print(ablation.render(), end="")
        return 0
    if args.command == "demo":
        # The examples only exist in a source checkout and are not an
        # installed package, so load the script by path next to this
        # package rather than importing ``examples.<name>``.
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "examples" / f"{args.name}.py"
        if not path.exists():
            print(f"error: {path} not found (demos need a source checkout)",
                  file=sys.stderr)
            return 2
        spec = importlib.util.spec_from_file_location(f"demo_{args.name}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    return 2  # unreachable with required=True; defensive


if __name__ == "__main__":
    sys.exit(main())
