"""The live production fleet of §5 (80 connected database deployments).

Provisions *n* database services across the paper's VM plan mix
(t2.small, t2.medium, m4.large, t2.large, m4.xlarge), assigns each a
production-style diurnal workload with per-instance scale and phase
jitter, and steps simulated time one monitoring window at a time across
the whole fleet. Figs. 9, 12 and 13 run on top of this.

Every member derives its randomness from a **keyed substream** of the
fleet's entropy root (:func:`~repro.common.rng.substream` keyed by the
member's fleet index), never from draws shared across members. That is
what lets the sharded executor (:mod:`repro.parallel`) rebuild member
*i* in any worker process — via :func:`build_member` — with exactly the
state a serial :class:`LiveFleet` would have given it, making fleet
results invariant to shard and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.monitoring import MonitoringAgent
from repro.cloud.provisioner import Provisioner, ServiceDeployment
from repro.common.rng import stream_root, substream
from repro.dbsim.batch_engine import MemberBatch
from repro.dbsim.engine import ExecutionResult
from repro.workloads.production import ProductionWorkload

__all__ = ["FleetMember", "FleetSpec", "LiveFleet", "PAPER_PLAN_MIX", "build_member"]

#: The §5 deployment plans, cycled over when provisioning the fleet.
PAPER_PLAN_MIX: tuple[str, ...] = (
    "t2.small",
    "t2.medium",
    "m4.large",
    "t2.large",
    "m4.xlarge",
)


@dataclass
class FleetMember:
    """One fleet database: deployment + workload + monitoring."""

    deployment: ServiceDeployment
    workload: ProductionWorkload
    monitoring: MonitoringAgent
    phase_offset_s: float

    @property
    def instance_id(self) -> str:
        return self.deployment.instance_id


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to (re)build any fleet member, picklable.

    ``build_member(spec, i)`` is a pure function of this spec, so a shard
    worker handed the spec plus its member indices reconstructs exactly
    the members a serial build would have produced.
    """

    size: int
    flavor: str = "postgres"
    mean_rps_range: tuple[float, float] = (80.0, 600.0)
    root: int = 0
    sample_size: int = 200
    monitoring_retention_s: float | None = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")


def build_member(spec: FleetSpec, index: int) -> FleetMember:
    """Build fleet member *index* from its keyed substreams.

    Draw order within the member's stream is part of the determinism
    contract — reordering the draws below changes every seeded fleet.
    """
    if not 0 <= index < spec.size:
        raise ValueError(f"member index {index} outside fleet of {spec.size}")
    rng = substream(spec.root, "member", index)
    data_size_gb = float(rng.uniform(8.0, 60.0))
    mean_rps = float(rng.uniform(*spec.mean_rps_range))
    # Tenants in nearby timezones: jitter phases by ±1 h.
    phase_offset_s = float(rng.uniform(-3600.0, 3600.0))
    provisioner = Provisioner(
        seed=substream(spec.root, "provision", index), start_index=index
    )
    deployment = provisioner.provision(
        plan=PAPER_PLAN_MIX[index % len(PAPER_PLAN_MIX)],
        flavor=spec.flavor,
        data_size_gb=data_size_gb,
        replicas=1,
    )
    workload = ProductionWorkload(
        mean_rps=mean_rps,
        data_size_gb=deployment.service.master.data_size_gb,
        seed=substream(spec.root, "workload", index),
        sample_size=spec.sample_size,
    )
    return FleetMember(
        deployment=deployment,
        workload=workload,
        monitoring=MonitoringAgent(
            deployment.instance_id,
            retention_s=spec.monitoring_retention_s,
        ),
        phase_offset_s=phase_offset_s,
    )


class LiveFleet:
    """*n* production databases stepped in lockstep windows.

    Parameters
    ----------
    size:
        Number of databases (the paper connects 80).
    flavor:
        DBMS flavor for every member.
    mean_rps_range:
        Per-member daily-average rate is drawn uniformly from this range —
        production tenants differ in size.
    seed:
        Master seed; members derive keyed substreams from it (see
        :func:`build_member`).
    sample_size:
        Per-window query-log sample size of every member's workload (the
        number of concrete queries materialised for the TDE to read).
    monitoring_retention_s:
        Retention window of every member's monitoring agent (see
        :class:`~repro.cloud.monitoring.MonitoringAgent`); ``None``
        retains everything.
    """

    def __init__(
        self,
        size: int = 80,
        flavor: str = "postgres",
        mean_rps_range: tuple[float, float] = (80.0, 600.0),
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
        monitoring_retention_s: float | None = None,
    ) -> None:
        self.spec = FleetSpec(
            size=size,
            flavor=flavor,
            mean_rps_range=mean_rps_range,
            root=stream_root(seed),
            sample_size=sample_size,
            monitoring_retention_s=monitoring_retention_s,
        )
        self.members: list[FleetMember] = [
            build_member(self.spec, i) for i in range(size)
        ]
        self._engine = MemberBatch(
            [m.deployment.service.master for m in self.members]
        )
        self.clock_s = 0.0

    def __len__(self) -> int:
        return len(self.members)

    def step(self, window_s: float) -> list[tuple[FleetMember, ExecutionResult]]:
        """Run one window on every member and advance the fleet clock."""
        out: list[tuple[FleetMember, ExecutionResult]] = []
        if any(m.deployment.service.master.crashed for m in self.members):
            # Serial semantics for a downed member: earlier members step
            # and ingest, then the dead member raises — generators and
            # monitoring past it must not advance.
            for member in self.members:
                batch = member.workload.batch(
                    window_s, start_time_s=self.clock_s + member.phase_offset_s
                )
                result = member.deployment.service.run(batch)
                member.monitoring.ingest(result)
                out.append((member, result))
            self.clock_s += window_s
            return out
        # Columnar hot path: every member draws only from its own keyed
        # substream, so generating all batches before stepping all members
        # consumes the streams exactly as the interleaved loop would.
        batches = [
            member.workload.batch(
                window_s, start_time_s=self.clock_s + member.phase_offset_s
            )
            for member in self.members
        ]
        results = self._engine.step_window(batches)
        for member, result in zip(self.members, results):
            member.monitoring.ingest(result)
            out.append((member, result))
        self.clock_s += window_s
        return out
