"""The live production fleet of §5 (80 connected database deployments).

Provisions *n* database services across the paper's VM plan mix
(t2.small, t2.medium, m4.large, t2.large, m4.xlarge), assigns each a
production-style diurnal workload with per-instance scale and phase
jitter, and steps simulated time one monitoring window at a time across
the whole fleet. Figs. 9, 12 and 13 run on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.monitoring import MonitoringAgent
from repro.cloud.provisioner import Provisioner, ServiceDeployment
from repro.common.rng import derive_rng, make_rng
from repro.dbsim.engine import ExecutionResult
from repro.workloads.production import ProductionWorkload

__all__ = ["FleetMember", "LiveFleet", "PAPER_PLAN_MIX"]

#: The §5 deployment plans, cycled over when provisioning the fleet.
PAPER_PLAN_MIX: tuple[str, ...] = (
    "t2.small",
    "t2.medium",
    "m4.large",
    "t2.large",
    "m4.xlarge",
)


@dataclass
class FleetMember:
    """One fleet database: deployment + workload + monitoring."""

    deployment: ServiceDeployment
    workload: ProductionWorkload
    monitoring: MonitoringAgent
    phase_offset_s: float

    @property
    def instance_id(self) -> str:
        return self.deployment.instance_id


class LiveFleet:
    """*n* production databases stepped in lockstep windows.

    Parameters
    ----------
    size:
        Number of databases (the paper connects 80).
    flavor:
        DBMS flavor for every member.
    mean_rps_range:
        Per-member daily-average rate is drawn uniformly from this range —
        production tenants differ in size.
    seed:
        Master seed; members derive their own streams.
    sample_size:
        Per-window query-log sample size of every member's workload (the
        number of concrete queries materialised for the TDE to read).
    monitoring_retention_s:
        Retention window of every member's monitoring agent (see
        :class:`~repro.cloud.monitoring.MonitoringAgent`); ``None``
        retains everything.
    """

    def __init__(
        self,
        size: int = 80,
        flavor: str = "postgres",
        mean_rps_range: tuple[float, float] = (80.0, 600.0),
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
        monitoring_retention_s: float | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._rng = make_rng(seed)
        self.provisioner = Provisioner(seed=derive_rng(self._rng, "provisioner"))
        self.members: list[FleetMember] = []
        self.clock_s = 0.0
        for i in range(size):
            plan = PAPER_PLAN_MIX[i % len(PAPER_PLAN_MIX)]
            deployment = self.provisioner.provision(
                plan=plan,
                flavor=flavor,
                data_size_gb=float(self._rng.uniform(8.0, 60.0)),
                replicas=1,
            )
            workload = ProductionWorkload(
                mean_rps=float(self._rng.uniform(*mean_rps_range)),
                data_size_gb=deployment.service.master.data_size_gb,
                seed=derive_rng(self._rng, f"wl-{i}"),
                sample_size=sample_size,
            )
            self.members.append(
                FleetMember(
                    deployment=deployment,
                    workload=workload,
                    monitoring=MonitoringAgent(
                        deployment.instance_id,
                        retention_s=monitoring_retention_s,
                    ),
                    # Tenants in nearby timezones: jitter phases by ±1 h.
                    phase_offset_s=float(self._rng.uniform(-3600.0, 3600.0)),
                )
            )

    def __len__(self) -> int:
        return len(self.members)

    def step(self, window_s: float) -> list[tuple[FleetMember, ExecutionResult]]:
        """Run one window on every member and advance the fleet clock."""
        out: list[tuple[FleetMember, ExecutionResult]] = []
        for member in self.members:
            batch = member.workload.batch(
                window_s, start_time_s=self.clock_s + member.phase_offset_s
            )
            result = member.deployment.service.run(batch)
            member.monitoring.ingest(result)
            out.append((member, result))
        self.clock_s += window_s
        return out
