"""Cloud provisioner — the cloud-foundry/Bosh stand-in.

§5 provisions everything through cloud-foundry managed by Bosh: 12 tuner
instances, 5 config-director instances and 80 live database deployments
across five VM plans, plus bare service replicas per plan for validating
recommendations. :class:`Provisioner` is the registry that spawns and
tracks those deployments in the simulation, and hands out the credentials
the Service Orchestrator layer manages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.vm import VMType, vm_type
from repro.common.rng import derive_rng, make_rng
from repro.dbsim.replication import ReplicatedService

__all__ = ["Credentials", "ServiceDeployment", "Provisioner"]


@dataclass(frozen=True)
class Credentials:
    """Access credentials for one service instance (held by the orchestrator)."""

    instance_id: str
    username: str
    password: str


@dataclass
class ServiceDeployment:
    """One provisioned database service."""

    instance_id: str
    plan: str
    service: ReplicatedService
    credentials: Credentials
    labels: dict[str, str] = field(default_factory=dict)


class Provisioner:
    """Spawns and tracks service deployments on VM plans."""

    def __init__(
        self,
        seed: int | np.random.Generator | None = 0,
        start_index: int = 0,
    ) -> None:
        """*start_index* offsets instance numbering (``svc-{index:04d}``)
        so per-member provisioners in a sharded fleet hand out the same
        globally-unique ids a single serial provisioner would."""
        if start_index < 0:
            raise ValueError("start_index must be >= 0")
        self._rng = make_rng(seed)
        self._counter = itertools.count(start_index)
        self._deployments: dict[str, ServiceDeployment] = {}

    def provision(
        self,
        plan: str | VMType = "m4.large",
        flavor: str = "postgres",
        data_size_gb: float = 20.0,
        replicas: int = 1,
        labels: dict[str, str] | None = None,
    ) -> ServiceDeployment:
        """Spawn a replicated database service on *plan*."""
        vm = vm_type(plan) if isinstance(plan, str) else plan
        index = next(self._counter)
        instance_id = f"svc-{index:04d}"
        service = ReplicatedService(
            flavor=flavor,
            vm=vm,
            data_size_gb=data_size_gb,
            replicas=replicas,
            seed=derive_rng(self._rng, instance_id),
        )
        password = "".join(
            "0123456789abcdef"[int(d)]
            for d in self._rng.integers(0, 16, size=16)
        )
        deployment = ServiceDeployment(
            instance_id=instance_id,
            plan=vm.name,
            service=service,
            credentials=Credentials(instance_id, f"admin_{index}", password),
            labels=dict(labels or {}),
        )
        self._deployments[instance_id] = deployment
        return deployment

    def deprovision(self, instance_id: str) -> None:
        """Tear a deployment down."""
        if instance_id not in self._deployments:
            raise KeyError(f"unknown deployment {instance_id!r}")
        del self._deployments[instance_id]

    def get(self, instance_id: str) -> ServiceDeployment:
        """Deployment by id."""
        try:
            return self._deployments[instance_id]
        except KeyError:
            raise KeyError(f"unknown deployment {instance_id!r}") from None

    def deployments(self) -> list[ServiceDeployment]:
        """All live deployments, provision order."""
        return list(self._deployments.values())

    def __len__(self) -> int:
        return len(self._deployments)
