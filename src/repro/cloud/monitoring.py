"""External monitoring agent — the paper's Dynatrace stand-in.

§3.2 monitors disk latency "from external monitoring agents such as
Dynatrace": the background-writer detector asks the agent for latency
readings around given timestamps, finds latency peaks, and measures the
spacing between them. :class:`MonitoringAgent` accumulates the disk
latency / IOPS series emitted by one database's execution windows and
serves exactly those queries.
"""

from __future__ import annotations

from repro.common.timeseries import TimeSeries
from repro.dbsim.engine import ExecutionResult

__all__ = ["MonitoringAgent"]


class MonitoringAgent:
    """Accumulates per-instance disk telemetry across execution windows.

    Parameters
    ----------
    instance_id:
        Database instance the telemetry belongs to.
    retention_s:
        If set, per-second disk series older than this (relative to the
        newest ingested window) are dropped — what a real monitoring
        backend's retention policy does. Detector queries only ever look
        a few windows back; a day-long fleet simulation would otherwise
        hold tens of millions of unread samples. ``None`` retains
        everything.
    """

    def __init__(
        self, instance_id: str = "db0", retention_s: float | None = None
    ) -> None:
        self.instance_id = instance_id
        self.retention_s = retention_s
        self.write_latency = TimeSeries("data.write_latency_ms", "ms")
        self.read_latency = TimeSeries("data.read_latency_ms", "ms")
        self.iops = TimeSeries("data.iops", "ops/s")
        self.throughput = TimeSeries("db.throughput_tps", "tps")

    def ingest(self, result: ExecutionResult) -> None:
        """Record the telemetry of one executed window."""
        self.write_latency.extend_series(result.data_disk.write_latency)
        self.read_latency.extend_series(result.data_disk.read_latency)
        self.iops.extend_series(result.data_disk.iops)
        self.throughput.append(result.start_time_s, result.throughput)
        if self.retention_s is not None:
            horizon = result.start_time_s + result.duration_s - self.retention_s
            self.write_latency.drop_before(horizon)
            self.read_latency.drop_before(horizon)
            self.iops.drop_before(horizon)

    def filter_result(self, result: ExecutionResult) -> ExecutionResult:
        """The window's observables as the monitoring pipeline saw them.

        The TDE reads each window *through* monitoring, not straight off
        the database (§2's Dynatrace integration). A healthy agent passes
        the result through unchanged; agents whose pipeline drops windows
        (see :class:`repro.faults.injectors.FaultyMonitoringAgent`) return
        a telemetry-stripped view instead, which is what puts detectors
        into degraded mode.
        """
        return result

    def write_latency_between(self, start_s: float, end_s: float) -> TimeSeries:
        """Write-latency readings in ``[start_s, end_s)``."""
        return self.write_latency.window(start_s, end_s)

    def latency_peaks(
        self, start_s: float, end_s: float, threshold_ms: float
    ) -> list[float]:
        """Timestamps of write-latency peaks above *threshold_ms*."""
        return self.write_latency_between(start_s, end_s).peaks(threshold_ms)

    def mean_peak_spacing_s(
        self, start_s: float, end_s: float, threshold_ms: float
    ) -> float | None:
        """Average seconds between consecutive latency peaks, or ``None``.

        This is §3.2's measurement: "the time difference between peaks in
        disk-latency is observed and averaged out for consecutive peaks".
        ``None`` means fewer than two peaks were found in the range.
        """
        peaks = self.latency_peaks(start_s, end_s, threshold_ms)
        if len(peaks) < 2:
            return None
        gaps = [b - a for a, b in zip(peaks, peaks[1:])]
        return sum(gaps) / len(gaps)
