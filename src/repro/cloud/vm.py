"""VM resource catalog — public home of the hardware types.

Implementation lives in :mod:`repro.common.hardware` (a dependency-free
leaf module) so the DB simulator can import VM types without triggering
the cloud package's higher-level imports; this module is the public face.
"""

from repro.common.hardware import (
    HDD,
    SSD,
    VM_TYPES,
    DiskKind,
    VMType,
    vm_type,
)

__all__ = ["DiskKind", "HDD", "SSD", "VMType", "VM_TYPES", "vm_type"]
