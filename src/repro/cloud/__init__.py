"""Cloud substrate: VM types, provisioner, monitoring agent, live fleet."""

from repro.cloud.fleet import (
    PAPER_PLAN_MIX,
    FleetMember,
    FleetSpec,
    LiveFleet,
    build_member,
)
from repro.cloud.metrics_export import render_agent_metrics, render_counters
from repro.cloud.monitoring import MonitoringAgent
from repro.cloud.provisioner import Credentials, Provisioner, ServiceDeployment
from repro.cloud.vm import HDD, SSD, VM_TYPES, DiskKind, VMType, vm_type

__all__ = [
    "Credentials",
    "DiskKind",
    "FleetMember",
    "FleetSpec",
    "build_member",
    "HDD",
    "LiveFleet",
    "MonitoringAgent",
    "PAPER_PLAN_MIX",
    "Provisioner",
    "render_agent_metrics",
    "render_counters",
    "SSD",
    "ServiceDeployment",
    "VMType",
    "VM_TYPES",
    "vm_type",
]
