"""Prometheus-style text exposition of monitoring data.

The paper's landscape feeds an external monitoring system (Dynatrace);
an open-source deployment would scrape Prometheus. This module renders a
:class:`~repro.cloud.monitoring.MonitoringAgent`'s latest readings, a
landscape's throttle/request counters, and — since the observability
layer landed — a whole :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges and bucketed histograms) in the Prometheus text
exposition format (v0.0.4), so the simulator can stand in for a real
scrape target in integration environments.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.cloud.monitoring import MonitoringAgent
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "describe_counter_families",
    "render_agent_metrics",
    "render_counters",
    "render_registry",
]


def describe_counter_families(
    registry: MetricsRegistry, families: Mapping[str, str]
) -> None:
    """Declare *families* (name -> help text) as counters on *registry*.

    Scrapers discover a family from its ``# HELP``/``# TYPE`` header, so
    exporters declare their whole vocabulary up front — e.g. the safety
    governor's ``SAFETY_METRIC_FAMILIES`` — and
    :func:`render_registry` then renders the headers even before (or
    without) any increment landing.
    """
    for name, help_text in families.items():
        registry.describe(name, "counter", help_text)


def _sanitise_label(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_sanitise_label(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def render_registry(registry: MetricsRegistry) -> str:
    """Every family of *registry* in Prometheus text exposition format.

    Families render in name order with their ``# HELP`` / ``# TYPE``
    header even when no sample has landed yet (empty series), histograms
    as cumulative ``_bucket{le=...}`` samples plus ``_sum``/``_count`` —
    the full exposition shape, deterministically ordered.
    """
    lines: list[str] = []
    for name in sorted(registry.families):
        family = registry.families[name]
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            rendered = (
                f"{sample.value:.6g}"
                if sample.value != int(sample.value)
                else f"{int(sample.value)}"
            )
            lines.append(
                f"{sample.name}{_render_labels(sample.labels)} {rendered}"
            )
    return "\n".join(lines) + "\n"


def render_agent_metrics(agent: MonitoringAgent) -> str:
    """One agent's latest gauges in Prometheus text format."""
    instance = _sanitise_label(agent.instance_id)
    lines = [
        "# HELP repro_disk_write_latency_ms Data-disk write latency.",
        "# TYPE repro_disk_write_latency_ms gauge",
        "# HELP repro_disk_read_latency_ms Data-disk read latency.",
        "# TYPE repro_disk_read_latency_ms gauge",
        "# HELP repro_disk_iops Data-disk IO operations per second.",
        "# TYPE repro_disk_iops gauge",
        "# HELP repro_throughput_tps Achieved transactions per second.",
        "# TYPE repro_throughput_tps gauge",
    ]

    def last(series) -> float | None:
        return series.values[-1] if len(series) else None

    samples = (
        ("repro_disk_write_latency_ms", last(agent.write_latency)),
        ("repro_disk_read_latency_ms", last(agent.read_latency)),
        ("repro_disk_iops", last(agent.iops)),
        ("repro_throughput_tps", last(agent.throughput)),
    )
    for name, value in samples:
        if value is not None:
            lines.append(f'{name}{{instance="{instance}"}} {value:.6g}')
    return "\n".join(lines) + "\n"


def render_counters(
    throttle_counts: dict[str, dict[str, int]],
    tuning_requests_total: int,
) -> str:
    """Landscape-level counters (throttles by class, tuning requests)."""
    lines = [
        "# HELP repro_throttles_total Throttles detected, by knob class.",
        "# TYPE repro_throttles_total counter",
    ]
    for instance_id, by_class in sorted(throttle_counts.items()):
        instance = _sanitise_label(instance_id)
        for knob_class, count in sorted(by_class.items()):
            lines.append(
                f'repro_throttles_total{{instance="{instance}",'
                f'knob_class="{_sanitise_label(knob_class)}"}} {count}'
            )
    lines.extend(
        (
            "# HELP repro_tuning_requests_total Tuning requests routed.",
            "# TYPE repro_tuning_requests_total counter",
            f"repro_tuning_requests_total {tuning_requests_total}",
        )
    )
    return "\n".join(lines) + "\n"
