"""Shared-memory member-state bank for the sharded fleet executor.

Steady-state fleet windows move two dense per-member vectors from shard
workers back to the coordinator: the member's knob values and its
delta-metric vector. Shipping them through the result pipe as pickled
``KnobConfiguration``/``MetricsDelta`` objects made the per-window
payload scale with fleet size; a :class:`MemberBank` instead backs both
with one ``float64`` block — ``multiprocessing.shared_memory`` under the
process backend, plain arrays under the sequential backend — indexed by
canonical member index. Workers write only their own members' rows, the
pipe message that follows each step is the synchronisation barrier, and
the coordinator decodes rows back into value-identical objects.

The bank is pure transport: float values written on one side are read
bit-identically on the other, so outputs stay byte-identical across
backends and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["MemberBank", "MemberBankHandle"]


class MemberBank:
    """Per-member ``(config values, metric values)`` rows, possibly shared.

    Layout is one contiguous float64 block: an ``(n, n_config)`` matrix of
    knob values followed by an ``(n, n_metrics)`` matrix of delta metrics,
    both indexed by canonical member index.
    """

    def __init__(
        self,
        n_members: int,
        n_config: int,
        n_metrics: int,
        shm: shared_memory.SharedMemory | None = None,
        owner: bool = False,
    ) -> None:
        if n_members < 1 or n_config < 1 or n_metrics < 1:
            raise ValueError("bank dimensions must be positive")
        self.n_members = n_members
        self.n_config = n_config
        self.n_metrics = n_metrics
        self._shm = shm
        self._owner = owner
        if shm is None:
            self.configs = np.zeros((n_members, n_config))
            self.metrics = np.zeros((n_members, n_metrics))
        else:
            flat = np.frombuffer(shm.buf, dtype=np.float64)
            split = n_members * n_config
            self.configs = flat[:split].reshape(n_members, n_config)
            self.metrics = flat[
                split : split + n_members * n_metrics
            ].reshape(n_members, n_metrics)

    @classmethod
    def create(
        cls, n_members: int, n_config: int, n_metrics: int, shared: bool
    ) -> "MemberBank":
        """Allocate a bank; *shared* selects a shared-memory backing.

        The sequential backend keeps plain process-local arrays — its
        shard workers live in the coordinator process and see the same
        object. The process backend needs a real shared mapping: worker
        writes must reach the coordinator without crossing the pipe.
        """
        if not shared:
            return cls(n_members, n_config, n_metrics)
        nbytes = 8 * n_members * (n_config + n_metrics)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        bank = cls(n_members, n_config, n_metrics, shm=shm, owner=True)
        bank.configs.fill(0.0)
        bank.metrics.fill(0.0)
        return bank

    def write(
        self, index: int, config_values: list[float], metric_values: list[float]
    ) -> None:
        """Store one member's window vectors (worker side)."""
        self.configs[index] = config_values
        self.metrics[index] = metric_values

    def config_row(self, index: int) -> list[float]:
        """One member's knob values as python floats (coordinator side)."""
        return self.configs[index].tolist()

    def metrics_row(self, index: int) -> list[float]:
        """One member's metric values as python floats (coordinator side)."""
        return self.metrics[index].tolist()

    def handle(self) -> "MemberBankHandle":
        """A reference workers can carry; picklable iff shared-backed."""
        if self._shm is None:
            return MemberBankHandle(bank=self)
        return MemberBankHandle(
            name=self._shm.name,
            n_members=self.n_members,
            n_config=self.n_config,
            n_metrics=self.n_metrics,
        )

    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks."""
        if self._shm is None:
            return
        # Views into the buffer must die before the mapping can close.
        self.configs = np.zeros((0, self.n_config))
        self.metrics = np.zeros((0, self.n_metrics))
        self._shm.close()
        if self._owner:
            self._shm.unlink()
        self._shm = None


@dataclass
class MemberBankHandle:
    """How a shard worker finds the bank.

    Sequential backend: a direct reference to the coordinator's bank (the
    worker shares the process). Process backend: the shared-memory block
    name plus dimensions; ``attach()`` maps it. Under ``fork`` the handle
    is inherited with the mapping already open; under ``spawn`` it is
    pickled and the worker re-attaches by name.
    """

    bank: MemberBank | None = None
    name: str | None = None
    n_members: int = 0
    n_config: int = 0
    n_metrics: int = 0

    def attach(self) -> MemberBank:
        if self.bank is not None:
            return self.bank
        if self.name is None:
            raise ValueError("empty MemberBankHandle")
        # Attaching (create=False) does not register with the resource
        # tracker on this Python line, so the creating coordinator stays
        # the sole owner of unlink — exactly what we want.
        shm = shared_memory.SharedMemory(name=self.name)
        self.bank = MemberBank(
            self.n_members, self.n_config, self.n_metrics, shm=shm
        )
        return self.bank
