"""Canonical order-stable reducers for sharded fleet execution.

Workers hand back per-member outputs tagged with the member's fleet
index; merging sorts by that index, so the coordinator sees the same
sequence a serial loop over the fleet would have produced no matter how
members were partitioned into shards or which worker finished first.
Metrics registries fold via :meth:`MetricsRegistry.merge` (counters add,
histograms add bucket-wise, gauges last-write-wins in merge order) and
trace fragments splice via :meth:`TraceRecorder.absorb`; both are
documented as order-stable, which is why every merge here happens in
canonical member order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

from repro.obs.metrics import MetricsRegistry

__all__ = ["merge_member_outputs", "merge_registries"]

T = TypeVar("T")


def merge_member_outputs(
    shard_outputs: Iterable[Sequence[tuple[int, T]]],
) -> list[tuple[int, T]]:
    """Flatten per-shard ``(member_index, payload)`` lists, member order.

    Raises if two shards report the same member — that is always a
    partitioning bug, and silently keeping one output would make results
    depend on shard iteration order.
    """
    merged: list[tuple[int, T]] = []
    for outputs in shard_outputs:
        merged.extend(outputs)
    merged.sort(key=lambda pair: pair[0])
    for (a, _), (b, _) in zip(merged, merged[1:]):
        if a == b:
            raise ValueError(f"member {a} reported by more than one shard")
    return merged


def merge_registries(registries: Sequence[MetricsRegistry]) -> MetricsRegistry:
    """Fold registries left-to-right into a fresh one.

    The fold is associative (see ``tests/unit/test_parallel.py``), so any
    shard-tree reduction yields the same registry as the flat canonical
    fold — provided the *sequence* is in canonical member order.
    """
    out = MetricsRegistry()
    for registry in registries:
        out.merge(registry)
    return out
