"""The sharded fleet executor: sequential and multiprocessing backends.

:class:`FleetExecutor` runs per-member fleet work either in-process (the
``sequential`` backend — the default, the fallback, and the reference
semantics) or across persistent ``multiprocessing`` workers (the
``process`` backend, one worker per shard). Both backends execute the
same member code; determinism rests on three rules that callers must
follow and the parity/property suites enforce:

1. **Keyed substreams** — every member derives its randomness from
   :func:`~repro.common.rng.substream` keyed by the member's fleet
   index, never from a generator shared across members, so a member's
   behaviour does not depend on which shard runs it.
2. **Index-tagged outputs** — workers return ``(member_index, payload)``
   pairs; the executor re-merges them in canonical member order
   (:func:`~repro.parallel.reduce.merge_member_outputs`), so results do
   not depend on shard iteration or completion order.
3. **Snapshot isolation** — a worker only sees the state it was handed
   at setup plus per-step commands; shared mutable state (the tuner
   repository, the live trace recorder) stays with the coordinator and
   is updated only between steps, identically under both backends.

A worker process that dies — killed, OOM, or an exception inside the
task — surfaces as :class:`WorkerCrashed` (a typed error carrying the
shard, exit code and remote traceback), never as a hang: the coordinator
polls worker liveness while waiting on results.

Host-level waiting in this module uses the wall clock, which is fine —
the executor is harness infrastructure, not simulation; simulated time
is threaded through the commands and outputs it transports.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from collections.abc import Callable, Sequence
from multiprocessing.connection import Connection
from typing import Any

from repro.parallel.stats import SessionStats, StepStats

__all__ = ["FleetExecutor", "FleetSession", "WorkerCrashed", "partition_members"]

#: Seconds between liveness checks while waiting on a worker result.
_POLL_INTERVAL_S = 0.05


def _isolate(value: Any) -> Any:
    """Give *value* an object graph independent of its siblings.

    Task results that came out of one chunk's unpickle share references
    (pickle memoization); results computed in-process share whatever the
    task function shared. Round-tripping each result on its own makes the
    returned object graphs — and therefore any bytes later derived from
    them — identical for every backend, worker count and chunking.
    """
    return pickle.loads(pickle.dumps(value))


class WorkerCrashed(RuntimeError):
    """A shard worker died or raised instead of returning a result."""

    def __init__(
        self,
        shard: int,
        reason: str,
        exitcode: int | None = None,
        remote_traceback: str | None = None,
    ) -> None:
        detail = f"shard {shard} worker: {reason}"
        if exitcode is not None:
            detail += f" (exit code {exitcode})"
        super().__init__(detail)
        self.shard = shard
        self.reason = reason
        self.exitcode = exitcode
        self.remote_traceback = remote_traceback

    def __reduce__(
        self,
    ) -> tuple[type, tuple[int, str, int | None, str | None]]:
        # Default exception pickling would replay ``args`` (the rendered
        # message) into ``__init__``'s four parameters; rebuild from the
        # structured fields instead.
        return (
            type(self),
            (self.shard, self.reason, self.exitcode, self.remote_traceback),
        )


def partition_members(n_members: int, n_shards: int) -> list[list[int]]:
    """Canonical contiguous partition of ``range(n_members)`` into shards.

    Shard sizes differ by at most one, earlier shards take the extra
    member, and empty shards are dropped. The choice of partition is a
    load-balancing decision only — member results are invariant to it.
    """
    if n_members < 0:
        raise ValueError("n_members must be >= 0")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_members == 0:
        return []
    n_shards = min(n_shards, n_members)
    base, extra = divmod(n_members, n_shards)
    shards: list[list[int]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


# -- worker process entry points (top-level so the spawn method can import them) --


def _map_main(
    conn: Connection, fn: Callable[[Any], Any], chunk: list[Any]
) -> None:
    """One-shot map worker: apply *fn* to a chunk, send results, exit."""
    try:
        conn.send(("ok", [fn(item) for item in chunk]))
    except BaseException as exc:  # noqa: B036 - report, then die
        conn.send(("error", repr(exc), traceback.format_exc()))
    finally:
        conn.close()


def _session_main(
    conn: Connection,
    factory: Callable[[Any, tuple[int, ...]], Any],
    spec: Any,
    indices: tuple[int, ...],
) -> None:
    """Persistent shard worker: build state once, answer step commands."""
    try:
        worker = factory(spec, indices)
    except BaseException as exc:  # noqa: B036 - report, then die
        conn.send(("error", repr(exc), traceback.format_exc()))
        conn.close()
        return
    conn.send(("ready", len(indices)))
    while True:
        message = conn.recv()
        if message[0] == "close":
            break
        assert message[0] == "step"
        try:
            start = time.perf_counter()
            outputs = list(worker.step(message[1]))
            step_s = time.perf_counter() - start
            conn.send(("ok", outputs, step_s))
        except BaseException as exc:  # noqa: B036 - report, then die
            conn.send(("error", repr(exc), traceback.format_exc()))
            break
    conn.close()


class FleetExecutor:
    """Deterministic fan-out of per-member fleet work.

    Parameters
    ----------
    workers:
        Worker count. ``1`` (the default) selects the in-process
        ``sequential`` backend; ``>= 2`` selects the ``process`` backend
        with one persistent worker per shard.
    start_method:
        ``multiprocessing`` start method for the process backend
        (``None``: the platform default — ``fork`` on Linux). Under
        ``spawn``, task callables and specs must be importable
        module-level objects.
    """

    def __init__(self, workers: int = 1, start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.start_method = start_method

    @property
    def backend(self) -> str:
        """``"sequential"`` or ``"process"`` — resolved from ``workers``."""
        return "sequential" if self.workers == 1 else "process"

    def _context(self) -> multiprocessing.context.BaseContext:
        return multiprocessing.get_context(self.start_method)

    # -- one-shot map ------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply *fn* to every item; results in input order.

        Items are independent tasks (a chaos landscape, one throttle
        panel measurement); *fn* must be a deterministic function of its
        item. The process backend chunks items contiguously across
        workers; chunking is invisible in the results.
        """
        items = list(items)
        if self.backend == "sequential" or len(items) <= 1:
            return [_isolate(fn(item)) for item in items]
        chunks = partition_members(len(items), self.workers)
        ctx = self._context()
        procs: list[tuple[int, Any, Connection]] = []
        for shard, chunk in enumerate(chunks):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_map_main,
                args=(child_conn, fn, [items[i] for i in chunk]),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append((shard, proc, parent_conn))
        results: list[Any] = [None] * len(items)
        try:
            for (shard, proc, conn), chunk in zip(procs, chunks):
                payload = _receive(conn, proc, shard)[0][1]
                for index, value in zip(chunk, payload):
                    results[index] = _isolate(value)
        finally:
            for _, proc, conn in procs:
                conn.close()
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
        return results

    # -- persistent sharded sessions -----------------------------------------------

    def fleet_session(
        self,
        factory: Callable[[Any, tuple[int, ...]], Any],
        spec: Any,
        n_members: int,
        partition: Sequence[Sequence[int]] | None = None,
        stats: SessionStats | None = None,
    ) -> "FleetSession":
        """Open a stateful sharded session over *n_members* members.

        ``factory(spec, indices)`` builds one shard's state (members,
        TDEs, repository snapshot) and returns a worker object whose
        ``step(command)`` returns ``(member_index, payload)`` pairs.
        *partition* overrides the canonical contiguous partition — any
        disjoint cover of ``range(n_members)`` must yield identical
        results (the property suite exercises exactly that). *stats*, if
        given, collects the session's per-step pipe-seam accounting (the
        session always keeps its own on ``FleetSession.stats``).
        """
        if partition is None:
            shards = partition_members(n_members, self.workers)
        else:
            shards = [list(indices) for indices in partition if len(indices)]
            covered = sorted(i for shard in shards for i in shard)
            if covered != list(range(n_members)):
                raise ValueError(
                    f"partition does not cover range({n_members}) exactly: {covered}"
                )
        return FleetSession(self, factory, spec, shards, stats=stats)


def _receive(conn: Connection, proc: Any, shard: int) -> tuple[Any, int]:
    """One worker message and its wire size, or a typed
    :class:`WorkerCrashed` — never a hang."""
    while True:
        try:
            if conn.poll(_POLL_INTERVAL_S):
                payload = conn.recv_bytes()
                break
        except (EOFError, OSError):
            proc.join(timeout=5.0)
            raise WorkerCrashed(
                shard, "connection closed before result", proc.exitcode
            ) from None
        if not proc.is_alive():
            # Raced against a final message already in the pipe?
            if conn.poll(0):
                payload = conn.recv_bytes()
                break
            raise WorkerCrashed(shard, "worker died", proc.exitcode)
    # ``Connection.send`` is ``send_bytes(pickle.dumps(obj))``; reading
    # the raw frame keeps workers on plain ``send`` while letting the
    # coordinator weigh every reply.
    message = pickle.loads(payload)
    if message[0] == "error":
        raise WorkerCrashed(
            shard, message[1], proc.exitcode, remote_traceback=message[2]
        )
    return message, len(payload)


class FleetSession:
    """A live sharded session; use as a context manager.

    Sequential backend: shard workers are plain in-process objects.
    Process backend: each shard worker lives in a persistent child
    process; ``step`` broadcasts the command to every shard, then
    collects and re-merges outputs in canonical member order.
    """

    def __init__(
        self,
        executor: FleetExecutor,
        factory: Callable[[Any, tuple[int, ...]], Any],
        spec: Any,
        shards: list[list[int]],
        stats: SessionStats | None = None,
    ) -> None:
        self._executor = executor
        self._factory = factory
        self._spec = spec
        self.shards = shards
        self.stats = stats if stats is not None else SessionStats()
        self.stats.backend = executor.backend
        self.stats.shards = len(shards)
        self._local_workers: list[Any] | None = None
        self._procs: list[tuple[Any, Connection]] = []
        self._closed = False

    def __enter__(self) -> "FleetSession":
        if self._executor.backend == "sequential" or len(self.shards) <= 1:
            self._local_workers = [
                self._factory(self._spec, tuple(indices)) for indices in self.shards
            ]
            return self
        ctx = self._executor._context()
        for indices in self.shards:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_session_main,
                args=(child_conn, self._factory, self._spec, tuple(indices)),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append((proc, parent_conn))
        for shard, (proc, conn) in enumerate(self._procs):
            _receive(conn, proc, shard)  # "ready" handshake (or typed crash)
        return self

    def step(self, command: Any) -> list[tuple[int, Any]]:
        """Run one step on every shard; outputs merged in member order."""
        if self._closed:
            raise RuntimeError("session is closed")
        clock = time.perf_counter
        start = clock()
        # The command is serialized exactly once per window whatever the
        # backend: the process path broadcasts the one payload to every
        # pipe, the sequential path only weighs it — the per-window wire
        # cost is a reported, asserted-on number either way.
        payload = pickle.dumps(("step", command))
        serialize_s = clock() - start
        if self._local_workers is not None:
            start = clock()
            outputs = [list(worker.step(command)) for worker in self._local_workers]
            step_s = clock() - start
            bytes_sent = bytes_received = 0
            send_s = recv_s = 0.0
        else:
            start = clock()
            for _, conn in self._procs:
                conn.send_bytes(payload)
            send_s = clock() - start
            bytes_sent = len(payload) * len(self._procs)
            start = clock()
            outputs = []
            bytes_received = 0
            step_s = 0.0
            for shard, (proc, conn) in enumerate(self._procs):
                message, nbytes = _receive(conn, proc, shard)
                outputs.append(message[1])
                step_s = max(step_s, message[2])
                bytes_received += nbytes
            recv_s = clock() - start
        from repro.parallel.reduce import merge_member_outputs

        start = clock()
        merged = merge_member_outputs(outputs)
        merge_s = clock() - start
        self.stats.record(
            StepStats(
                command_bytes=len(payload),
                bytes_sent=bytes_sent,
                bytes_received=bytes_received,
                serialize_s=serialize_s,
                send_s=send_s,
                step_s=step_s,
                recv_s=recv_s,
                merge_s=merge_s,
            )
        )
        return merged

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._local_workers = None
        for proc, conn in self._procs:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc, _ in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []

    def __exit__(self, *exc_info: object) -> None:
        self.close()
