"""Per-step timing and byte accounting at the executor pipe seam.

The fleet executor is the one place where every window's data crosses a
process boundary, so it is the right seam to measure two things the
benches and ``repro trace fleet --profile`` report: how window wall time
splits between member stepping, serialization and reduction, and how
many bytes each window actually ships. :class:`SessionStats` collects
one :class:`StepStats` row per ``FleetSession.step`` under both
backends; it observes the session and never feeds back into results, so
collecting it cannot perturb parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SessionStats", "StepStats", "render_session_stats"]


@dataclass(frozen=True)
class StepStats:
    """One session step, timed and weighed at the pipe seam."""

    #: Serialized broadcast command size (what one shard receives).
    command_bytes: int
    #: Total bytes written to worker pipes (0 under the sequential backend).
    bytes_sent: int
    #: Total bytes read back from worker pipes (0 under sequential).
    bytes_received: int
    #: Coordinator time pickling the broadcast command.
    serialize_s: float
    #: Coordinator time writing the command to every pipe.
    send_s: float
    #: Member stepping self-time: the slowest shard's own ``step`` clock
    #: under the process backend, the summed in-process time under
    #: sequential.
    step_s: float
    #: Coordinator time waiting on and reading worker replies.
    recv_s: float
    #: Coordinator time re-merging outputs into canonical member order.
    merge_s: float


@dataclass
class SessionStats:
    """All steps of one fleet session, plus session-level context."""

    backend: str = ""
    shards: int = 0
    #: Size of the pickled shared-state snapshot each worker received at
    #: session setup (the window-0 broadcast cost). Filled by the
    #: experiment driver, which owns the snapshot.
    snapshot_bytes: int = 0
    #: Size the snapshot had grown to by the end of the run — what the
    #: old protocol would have re-pickled at the last window, and hence
    #: the honest counterfactual for the delta-only saving. Also filled
    #: by the experiment driver; 0 when not measured.
    final_snapshot_bytes: int = 0
    steps: list[StepStats] = field(default_factory=list)

    def record(self, step: StepStats) -> None:
        self.steps.append(step)

    def steady_steps(self) -> list[StepStats]:
        """Steps after window 0 — the delta-only regime."""
        return self.steps[1:]

    def mean_command_bytes(self, steady: bool = True) -> float:
        steps = self.steady_steps() if steady else self.steps
        if not steps:
            return 0.0
        return sum(s.command_bytes for s in steps) / len(steps)

    def total(self, field_name: str) -> float:
        return float(sum(getattr(s, field_name) for s in self.steps))


def render_session_stats(stats: SessionStats) -> str:
    """Deterministic-shape text table for ``--profile`` output.

    Host times vary run to run (like the span profile's host columns);
    byte counts are deterministic for identical arguments.
    """
    steady = stats.steady_steps()
    lines = [
        "pipe seam (fleet executor):",
        f"  backend={stats.backend} shards={stats.shards} "
        f"windows={len(stats.steps)}",
        f"  setup snapshot: {stats.snapshot_bytes} bytes/worker",
    ]
    if stats.steps:
        first = stats.steps[0]
        lines.append(f"  window 0 command: {first.command_bytes} bytes")
    if steady:
        mean_bytes = stats.mean_command_bytes()
        peak = max(s.command_bytes for s in steady)
        lines.append(
            f"  steady-state command: mean {mean_bytes:.0f} bytes/window, "
            f"peak {peak} bytes"
        )
        counterfactual = stats.final_snapshot_bytes or stats.snapshot_bytes
        if counterfactual and mean_bytes:
            lines.append(
                "  vs full-snapshot rebroadcast: "
                f"{counterfactual / mean_bytes:.1f}x smaller"
            )
    for name, label in (
        ("step_s", "member step"),
        ("serialize_s", "serialize"),
        ("send_s", "send"),
        ("recv_s", "recv wait"),
        ("merge_s", "reduce"),
    ):
        lines.append(f"  {label:<12} {stats.total(name):8.3f} s")
    return "\n".join(lines) + "\n"
