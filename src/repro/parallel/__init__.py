"""Deterministic sharded fleet execution.

The paper's headline experiments run over an 80-member fleet; this
package is the engine that fans the per-member work out across
``multiprocessing`` workers without giving up the repo's core invariant:
byte-identical seeded outputs. The pieces:

- :class:`~repro.parallel.executor.FleetExecutor` — partitions fleet
  members into shards, runs each shard either in-process (the
  ``sequential`` backend, the default and fallback) or in a persistent
  worker process (the ``process`` backend), and merges results through
  canonical order-stable reducers. Serial and parallel backends execute
  the *same* member code against the *same* keyed RNG substreams
  (:func:`~repro.common.rng.substream`), so outputs are invariant to
  backend, worker count and shard count by construction.
- :mod:`~repro.parallel.reduce` — the reducers: member outputs re-merged
  in canonical member order, metrics registries folded with
  :meth:`~repro.obs.metrics.MetricsRegistry.merge`, trace fragments
  spliced with :meth:`~repro.obs.trace.TraceRecorder.absorb`.

See ``docs/parallelism.md`` for the determinism contract and backend
selection, and ``tests/integration/test_parallel_parity.py`` for the
serial/parallel differential harness that enforces it.
"""

from repro.parallel.executor import (
    FleetExecutor,
    FleetSession,
    WorkerCrashed,
    partition_members,
)
from repro.parallel.reduce import merge_member_outputs, merge_registries
from repro.parallel.shm import MemberBank, MemberBankHandle
from repro.parallel.stats import SessionStats, StepStats, render_session_stats

__all__ = [
    "FleetExecutor",
    "FleetSession",
    "MemberBank",
    "MemberBankHandle",
    "SessionStats",
    "StepStats",
    "WorkerCrashed",
    "merge_member_outputs",
    "merge_registries",
    "partition_members",
    "render_session_stats",
]
