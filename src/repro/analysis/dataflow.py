"""Taint-style interprocedural dataflow for the ``--deep`` rules.

The analysis answers three families of questions the per-file rules
cannot:

* **Order provenance** — does a value reach a canonical-order merge sink
  (``merge_member_outputs``, ``MetricsRegistry.merge``,
  ``TraceRecorder.absorb``) or a float accumulation while carrying
  set/dict iteration order (:data:`Tag.UNORDERED`) or worker-completion
  order (:data:`Tag.SHARD_RAW` — ``as_completed``, ``imap_unordered``,
  ``multiprocessing.connection.wait``)?
* **RNG provenance** — does a live ``numpy`` Generator (built by
  ``make_rng`` / ``derive_rng`` / ``substream`` / ``default_rng``) cross
  a shard boundary (a ``FleetSpec``, ``FleetExecutor.fleet_session`` or
  ``FleetExecutor.map`` call) instead of an integer ``stream_root``?
* **Mutation provenance** — which of a function's parameters does it
  mutate, directly or through callees, so that a shard worker mutating
  the coordinator's snapshot graph is visible at the crossing call site?

Every function is analyzed intraprocedurally into :class:`FunctionFacts`
(mutation, call, sink, accumulation and boundary events, each carrying
the *roots* — parameter / ``self``-attribute / ``global`` origins — and
*tags* of the values involved). A small fixpoint then closes
:class:`FunctionSummary` objects over the call graph: return tags,
transitively mutated parameters, and parameters that reach merge sinks,
accumulations or shard boundaries. The rules read only facts and
summaries.

The analysis is deliberately **approximate** (sound enough for the
invariants it guards, cheap enough to run on every lint):

* Call results are *fresh*: provenance does not flow through a call, so
  the sanctioned snapshot idiom ``pickle.loads(pickle.dumps(spec.repo))``
  breaks taint exactly where the runtime copies the object graph.
  (Project calls whose summary says "returns parameter *i*" are the
  exception — thin aliasing helpers stay transparent.)
* Tags *do* flow through unknown calls (union of receiver and argument
  tags): ``future.result()`` arrives in completion order if ``future``
  did, ``str(i)`` of something unordered stays unordered. Explicit
  sanitizers — ``sorted``, ``math.fsum``, ``merge_member_outputs``,
  ``stream_root`` — strip the relevant tags.
* Containers tag their elements: iterating a :data:`Tag.UNORDERED` or
  :data:`Tag.SHARD_RAW` container binds the loop variable with the same
  tag; displays and comprehensions union their inputs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.analysis.project import ClassInfo, FunctionInfo, ProjectIndex

__all__ = [
    "Tag",
    "Root",
    "MutationEvent",
    "CallEvent",
    "SinkEvent",
    "AccumEvent",
    "BoundaryEvent",
    "ShardEntryEvent",
    "FunctionFacts",
    "FunctionSummary",
    "ProjectAnalysis",
]

import enum


class Tag(enum.Enum):
    """What a value carries besides its payload."""

    #: A live RNG stream (``numpy`` Generator / ``random.Random``).
    RNG = "rng"
    #: Set/dict iteration order (no canonical order guaranteed).
    UNORDERED = "unordered"
    #: Worker-completion order (differs run to run and shard to shard).
    SHARD_RAW = "shard-raw"


@dataclass(frozen=True)
class Root:
    """Where a value came from, at function granularity.

    ``kind`` is ``"param"`` (key: positional index), ``"self"`` (key:
    attribute name — the value hangs off ``self.<key>``) or ``"global"``
    (key: module-level name declared ``global`` in the function).
    """

    kind: str
    key: int | str

    def describe(self, params: Sequence[str]) -> str:
        if self.kind == "param":
            index = int(self.key)
            if 0 <= index < len(params):
                return f"parameter `{params[index]}`"
            return f"parameter #{index}"
        if self.kind == "self":
            return f"`self.{self.key}`"
        return f"global `{self.key}`"


TagSet = frozenset[Tag]
RootSet = frozenset[Root]
NO_TAGS: TagSet = frozenset()
NO_ROOTS: RootSet = frozenset()
_ORDER_TAGS: TagSet = frozenset({Tag.UNORDERED, Tag.SHARD_RAW})


@dataclass(frozen=True)
class MutationEvent:
    """An in-place mutation (attr/item store or mutator-method call)."""

    roots: RootSet
    line: int
    col: int
    desc: str


@dataclass(frozen=True)
class CallEvent:
    """One call site, with per-argument provenance.

    ``callee`` is a project qname when resolution succeeded (a class
    qname means a constructor call — its parameters are the class
    ``__init__``'s, offset by one for ``self``). ``receiver_roots`` is
    the provenance of ``obj`` in ``obj.method(...)`` calls.
    """

    callee: str | None
    is_constructor: bool
    line: int
    col: int
    arg_roots: tuple[RootSet, ...]
    arg_tags: tuple[TagSet, ...]
    kw_names: tuple[str | None, ...]
    kw_roots: tuple[RootSet, ...]
    kw_tags: tuple[TagSet, ...]
    receiver_roots: RootSet = NO_ROOTS
    desc: str = ""


@dataclass(frozen=True)
class SinkEvent:
    """A value arriving at a canonical-order merge sink."""

    sink: str
    line: int
    col: int
    roots: RootSet
    tags: TagSet
    desc: str


@dataclass(frozen=True)
class AccumEvent:
    """A bare float accumulation (``sum(...)`` or ``+=``)."""

    line: int
    col: int
    roots: RootSet
    tags: TagSet
    desc: str


@dataclass(frozen=True)
class BoundaryEvent:
    """A value crossing into a shard spec / worker build path."""

    boundary: str
    line: int
    col: int
    arg: str
    roots: RootSet
    tags: TagSet


@dataclass(frozen=True)
class ShardEntryEvent:
    """A callable handed to the fleet executor as shard entry point.

    ``kind`` is ``"session"`` (``fleet_session(factory, spec, ...)`` —
    the factory's parameter 0 is the coordinator-owned spec) or
    ``"map"`` (``map(fn, items)`` — parameter 0 is the shared item).
    """

    factory: str
    kind: str
    line: int
    col: int


@dataclass
class FunctionFacts:
    """Everything the intraprocedural pass learned about one function."""

    info: FunctionInfo
    mutations: list[MutationEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    sinks: list[SinkEvent] = field(default_factory=list)
    accums: list[AccumEvent] = field(default_factory=list)
    boundaries: list[BoundaryEvent] = field(default_factory=list)
    shard_entries: list[ShardEntryEvent] = field(default_factory=list)
    #: ``self.<attr> = value`` assignments: attr -> roots of the value.
    self_attr_roots: dict[str, RootSet] = field(default_factory=dict)
    returns_tags: TagSet = NO_TAGS
    #: Parameter indices whose value the function may return unchanged
    #: (alias-through helpers like ``def pick(spec): return spec.repo``).
    returns_params: frozenset[int] = frozenset()


@dataclass(frozen=True)
class FunctionSummary:
    """Call-graph-closed behaviour of one function."""

    returns_tags: TagSet = NO_TAGS
    returns_params: frozenset[int] = frozenset()
    #: Parameters mutated in place, directly or via callees (``self``
    #: counts as parameter 0 for methods).
    mutates: frozenset[int] = frozenset()
    #: Parameters that reach a merge sink (here or transitively).
    merge_params: frozenset[int] = frozenset()
    #: Parameters that reach a bare float accumulation.
    accum_params: frozenset[int] = frozenset()
    #: Parameters that cross a shard boundary.
    boundary_params: frozenset[int] = frozenset()


# -- qualified-name tables -----------------------------------------------------

_RNG_SOURCES = {
    "repro.common.rng.make_rng",
    "repro.common.make_rng",
    "repro.common.rng.derive_rng",
    "repro.common.derive_rng",
    "repro.common.rng.substream",
    "repro.common.substream",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "random.Random",
}
_RNG_SANITIZERS = {"repro.common.rng.stream_root", "repro.common.stream_root"}
_ORDER_SANITIZERS = {"sorted", "math.fsum"}
_MERGE_SANITIZERS = {
    "repro.parallel.reduce.merge_member_outputs",
    "repro.parallel.merge_member_outputs",
}
_SHARD_RAW_SOURCES = {
    "concurrent.futures.as_completed",
    "multiprocessing.connection.wait",
}
_SHARD_RAW_METHODS = {"imap_unordered"}
_UNORDERED_METHODS = {"keys", "values", "items"}
_MERGE_SINKS = {
    "repro.parallel.reduce.merge_member_outputs",
    "repro.parallel.merge_member_outputs",
    "repro.parallel.reduce.merge_registries",
    "repro.parallel.merge_registries",
    "repro.obs.metrics.MetricsRegistry.merge",
    "repro.obs.trace.TraceRecorder.absorb",
}
#: Attribute names that count as merge sinks when the receiver's type is
#: unknown — ``merge``/``absorb`` are this codebase's reducer verbs.
_MERGE_SINK_ATTRS = {"merge", "absorb"}
_BOUNDARIES = {
    "repro.cloud.fleet.FleetSpec": "FleetSpec",
    "repro.cloud.FleetSpec": "FleetSpec",
    "repro.parallel.executor.FleetExecutor.fleet_session": "fleet_session",
    "repro.parallel.FleetExecutor.fleet_session": "fleet_session",
    "repro.parallel.executor.FleetExecutor.map": "map",
    "repro.parallel.FleetExecutor.map": "map",
}
_SESSION_METHODS = {"fleet_session": "session", "map": "map"}
_MUTATOR_METHODS = {
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse", "write",
}

#: Parameter names treated as carrying a live generator even without a
#: visible construction (the repo-wide convention for threading RNGs).
_RNG_PARAM_NAMES = {"rng"}
_RNG_PARAM_SUFFIX = "_rng"


def _rng_param(name: str, annotation: ast.expr | None) -> bool:
    if name in _RNG_PARAM_NAMES or name.endswith(_RNG_PARAM_SUFFIX):
        return True
    if annotation is not None:
        rendered = ast.dump(annotation)
        if "Generator" in rendered:
            return True
    return False


Value = tuple[RootSet, TagSet]
_NOTHING: Value = (NO_ROOTS, NO_TAGS)


class _FunctionAnalyzer:
    """One pass of abstract interpretation over a function body."""

    def __init__(
        self,
        info: FunctionInfo,
        index: ProjectIndex,
        summaries: dict[str, FunctionSummary],
    ) -> None:
        self.info = info
        self.index = index
        self.summaries = summaries
        self.facts = FunctionFacts(info)
        self.env: dict[str, Value] = {}
        #: Local var -> project class qname (constructor-typed locals).
        self.vartypes: dict[str, str] = {}
        self.globals_declared: set[str] = set()
        self._event_keys: set[tuple[object, ...]] = set()
        args = info.node.args
        for i, arg in enumerate((*args.posonlyargs, *args.args)):
            roots: RootSet = frozenset({Root("param", i)})
            tags: TagSet = (
                frozenset({Tag.RNG})
                if _rng_param(arg.arg, arg.annotation)
                else NO_TAGS
            )
            self.env[arg.arg] = (roots, tags)

    # -- driving ---------------------------------------------------------------

    def run(self) -> FunctionFacts:
        # Two passes over the body approximate a loop fixpoint: a tag
        # acquired late in the body reaches uses earlier in a loop on
        # the second pass. Events dedupe by site, so no double reports.
        for _ in range(2):
            for stmt in self.info.node.body:
                self._stmt(stmt)
        return self.facts

    def _once(self, *key: object) -> bool:
        if key in self._event_keys:
            return False
        self._event_keys.add(key)
        return True

    # -- statements ------------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
            for name in node.names:
                self.env[name] = (frozenset({Root("global", name)}), NO_TAGS)
        elif isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._assign(target, node.value, value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, node.value, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            value = self._eval(node.value)
            self._aug_assign(node, value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                roots, tags = self._eval(node.value)
                self.facts.returns_tags = self.facts.returns_tags | tags
                params = frozenset(
                    int(r.key) for r in roots if r.kind == "param"
                )
                self.facts.returns_params = self.facts.returns_params | params
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            roots, tags = self._eval(node.iter)
            self._bind(node.target, (roots, tags))
            for sub in (*node.body, *node.orelse):
                self._stmt(sub)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            for sub in (*node.body, *node.orelse):
                self._stmt(sub)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            for sub in (*node.body, *node.orelse):
                self._stmt(sub)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            for sub in node.body:
                self._stmt(sub)
        elif isinstance(node, ast.Try):
            for sub in (*node.body, *node.orelse, *node.finalbody):
                self._stmt(sub)
            for handler in node.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are indexed as their own functions; the
        # remaining statement kinds carry no dataflow we track.

    def _assign(self, target: ast.expr, value_expr: ast.expr, value: Value) -> None:
        roots, tags = value
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._mutation(
                    frozenset({Root("global", target.id)}),
                    target,
                    f"rebinds global `{target.id}`",
                )
                return
            self.env[target.id] = value
            ctor = self._constructor_class(value_expr)
            if ctor is not None:
                self.vartypes[target.id] = ctor
            elif isinstance(value_expr, ast.Name):
                copied = self.vartypes.get(value_expr.id)
                if copied is not None:
                    self.vartypes[target.id] = copied
            else:
                self.vartypes.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            base_roots, _ = self._eval(target.value)
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.info.is_method
            ):
                merged = self.facts.self_attr_roots.get(target.attr, NO_ROOTS)
                self.facts.self_attr_roots[target.attr] = merged | roots
            if base_roots:
                self._mutation(
                    base_roots, target, f"assigns `{_render(target)}`"
                )
        elif isinstance(target, ast.Subscript):
            base_roots, _ = self._eval(target.value)
            self._eval(target.slice)
            if base_roots:
                self._mutation(
                    base_roots, target, f"stores into `{_render(target.value)}[...]`"
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._assign(inner, value_expr, value)

    def _aug_assign(self, node: ast.AugAssign, value: Value) -> None:
        roots, tags = value
        target = node.target
        if isinstance(node.op, ast.Add) and Tag.SHARD_RAW in tags:
            if self._once("accum", node.lineno, node.col_offset):
                self.facts.accums.append(
                    AccumEvent(
                        node.lineno,
                        node.col_offset,
                        roots,
                        tags,
                        f"`{_render(target)} += ...` over worker-completion-"
                        "order values",
                    )
                )
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._mutation(
                    frozenset({Root("global", target.id)}),
                    target,
                    f"rebinds global `{target.id}`",
                )
                return
            old = self.env.get(target.id, _NOTHING)
            self.env[target.id] = (old[0] | roots, old[1] | tags)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base_roots, _ = self._eval(target.value)
            if base_roots:
                self._mutation(
                    base_roots, target, f"updates `{_render(target)}` in place"
                )

    def _bind(self, target: ast.expr, value: Value) -> None:
        """Bind a loop/with target; elements inherit container tags."""
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            self.vartypes.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(inner, value)

    def _mutation(self, roots: RootSet, node: ast.AST, desc: str) -> None:
        line = getattr(node, "lineno", self.info.node.lineno)
        col = getattr(node, "col_offset", 0)
        if self._once("mut", line, col, desc):
            self.facts.mutations.append(MutationEvent(roots, line, col, desc))

    # -- expressions -----------------------------------------------------------

    def _eval(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return _NOTHING
        if isinstance(node, ast.Attribute):
            base_roots, base_tags = self._eval(node.value)
            roots = base_roots
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.info.is_method
            ):
                roots = roots | frozenset({Root("self", node.attr)})
            return (roots, base_tags)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            self._eval(node.slice)
            return base
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._union(node.elts)
        if isinstance(node, ast.Set):
            roots, tags = self._union(node.elts)
            return (roots, tags | frozenset({Tag.UNORDERED}))
        if isinstance(node, ast.Dict):
            values = [v for v in (*node.keys, *node.values) if v is not None]
            return self._union(values)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            tags = self._comp_generators(node.generators)
            _, elt_tags = self._eval(node.elt)
            tags = tags | elt_tags
            if isinstance(node, ast.SetComp):
                tags = tags | frozenset({Tag.UNORDERED})
            return (NO_ROOTS, tags)
        if isinstance(node, ast.DictComp):
            tags = self._comp_generators(node.generators)
            _, key_tags = self._eval(node.key)
            _, value_tags = self._eval(node.value)
            return (NO_ROOTS, tags | key_tags | value_tags)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values)
        if isinstance(node, ast.BinOp):
            return self._union([node.left, node.right])
        if isinstance(node, ast.Compare):
            return self._union([node.left, *node.comparators])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._union([node.body, node.orelse])
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else _NOTHING
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value)
            return value
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self._eval(part.value)
            return _NOTHING
        if isinstance(node, ast.Slice):
            for sub in (node.lower, node.upper, node.step):
                if sub is not None:
                    self._eval(sub)
            return _NOTHING
        return _NOTHING

    def _union(self, exprs: Sequence[ast.expr]) -> Value:
        roots: RootSet = NO_ROOTS
        tags: TagSet = NO_TAGS
        for expr in exprs:
            r, t = self._eval(expr)
            roots, tags = roots | r, tags | t
        return (roots, tags)

    def _comp_generators(self, generators: Sequence[ast.comprehension]) -> TagSet:
        tags: TagSet = NO_TAGS
        for gen in generators:
            _, iter_tags = self._eval(gen.iter)
            self._bind(gen.target, (NO_ROOTS, iter_tags))
            tags = tags | (iter_tags & _ORDER_TAGS)
            for cond in gen.ifs:
                self._eval(cond)
        return tags

    # -- calls -----------------------------------------------------------------

    def _constructor_class(self, expr: ast.expr) -> str | None:
        """Project class qname if *expr* is a direct constructor call."""
        if not isinstance(expr, ast.Call):
            return None
        qname = self._callee_qname(expr.func)
        if qname is not None and qname in self.index.classes:
            return qname
        return None

    def _callee_qname(self, func: ast.expr) -> str | None:
        """Resolve a call target to a project/stdlib qualified name.

        Import-qualified names are canonicalized through re-exports so
        ``from repro.parallel import FleetExecutor`` resolves to the
        defining module's qname.
        """
        module = self.info.module
        qualified = module.imports.qualify(func)
        if qualified is not None:
            return self.index.canonical(qualified)
        if isinstance(func, ast.Name):
            return self.index.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.info.class_qname is not None:
                    cls = self.index.classes.get(self.info.class_qname)
                    if cls is not None and func.attr in cls.methods:
                        return cls.methods[func.attr]
                var_class = self.vartypes.get(base.id)
                if var_class is not None:
                    return f"{var_class}.{func.attr}"
            ctor = self._constructor_class(base) if isinstance(base, ast.Call) else None
            if ctor is not None:
                return f"{ctor}.{func.attr}"
        return None

    def _call(self, node: ast.Call) -> Value:
        qname = self._callee_qname(node.func)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        receiver: Value = _NOTHING
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)

        arg_values = [self._eval(arg) for arg in node.args]
        kw_values = [self._eval(kw.value) for kw in node.keywords]
        arg_roots = tuple(v[0] for v in arg_values)
        arg_tags = tuple(v[1] for v in arg_values)
        kw_names = tuple(kw.arg for kw in node.keywords)
        kw_roots = tuple(v[0] for v in kw_values)
        kw_tags = tuple(v[1] for v in kw_values)
        all_tags: TagSet = NO_TAGS
        for t in (*arg_tags, *kw_tags):
            all_tags = all_tags | t

        is_constructor = qname in self.index.classes if qname else False
        project_callee = qname if qname and (
            qname in self.index.functions or is_constructor
        ) else None
        if self._once("call", node.lineno, node.col_offset):
            self.facts.calls.append(
                CallEvent(
                    callee=project_callee,
                    is_constructor=is_constructor,
                    line=node.lineno,
                    col=node.col_offset,
                    arg_roots=arg_roots,
                    arg_tags=arg_tags,
                    kw_names=kw_names,
                    kw_roots=kw_roots,
                    kw_tags=kw_tags,
                    receiver_roots=receiver[0],
                    desc=_render(node.func),
                )
            )

        self._record_sinks(node, qname, attr, arg_values, kw_names, kw_values)
        self._record_boundary(node, qname, attr, arg_values, kw_names, kw_values)
        self._record_shard_entry(node, qname, attr)

        if attr in _MUTATOR_METHODS and receiver[0]:
            self._mutation(
                receiver[0],
                node,
                f"calls `{_render(node.func)}(...)` on a received object",
            )

        return self._call_result(node, qname, attr, receiver, arg_values, all_tags)

    def _call_result(
        self,
        node: ast.Call,
        qname: str | None,
        attr: str | None,
        receiver: Value,
        arg_values: list[Value],
        all_tags: TagSet,
    ) -> Value:
        bare = qname.rsplit(".", 1)[-1] if qname else None
        if qname in _RNG_SOURCES:
            return (NO_ROOTS, frozenset({Tag.RNG}))
        if qname in _RNG_SANITIZERS:
            return _NOTHING
        if qname in _ORDER_SANITIZERS or bare in {"sorted"} or (
            attr is None and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            combined = all_tags | receiver[1]
            return (NO_ROOTS, combined - _ORDER_TAGS)
        if qname in _MERGE_SANITIZERS:
            return (NO_ROOTS, (all_tags | receiver[1]) - _ORDER_TAGS)
        if qname in _SHARD_RAW_SOURCES or attr in _SHARD_RAW_METHODS:
            return (NO_ROOTS, frozenset({Tag.SHARD_RAW}))
        if attr in _UNORDERED_METHODS and not node.args and not node.keywords:
            return (NO_ROOTS, receiver[1] | frozenset({Tag.UNORDERED}))
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return (NO_ROOTS, all_tags | frozenset({Tag.UNORDERED}))
        if qname is not None:
            summary = self.summaries.get(qname)
            if summary is None and qname in self.index.classes:
                init = self.index.classes[qname].init_qname
                summary = self.summaries.get(init) if init else None
            if summary is not None:
                roots: RootSet = NO_ROOTS
                offset = 1 if qname in self.index.classes else 0
                for param in summary.returns_params:
                    position = param - offset
                    if 0 <= position < len(arg_values):
                        roots = roots | arg_values[position][0]
                return (roots, summary.returns_tags)
        # Unknown call: fresh object, but order/RNG tags ride through.
        return (NO_ROOTS, all_tags | receiver[1])

    def _record_sinks(
        self,
        node: ast.Call,
        qname: str | None,
        attr: str | None,
        arg_values: list[Value],
        kw_names: tuple[str | None, ...],
        kw_values: list[Value],
    ) -> None:
        is_sink = qname in _MERGE_SINKS or (
            qname is None and attr in _MERGE_SINK_ATTRS
        )
        if not is_sink:
            return
        sink = qname or f".{attr}"
        for label, (roots, tags) in _labelled_args(node, arg_values, kw_names, kw_values):
            if self._once("sink", node.lineno, node.col_offset, label):
                self.facts.sinks.append(
                    SinkEvent(
                        sink, node.lineno, node.col_offset, roots, tags,
                        f"argument `{label}` of `{_render(node.func)}`",
                    )
                )
        # ``sum()`` is the other canonical reducer; recorded as an
        # accumulation rather than a merge sink.

    def _record_boundary(
        self,
        node: ast.Call,
        qname: str | None,
        attr: str | None,
        arg_values: list[Value],
        kw_names: tuple[str | None, ...],
        kw_values: list[Value],
    ) -> None:
        boundary = _BOUNDARIES.get(qname) if qname else None
        if boundary is None and qname is None and attr == "fleet_session":
            boundary = "fleet_session"
        if boundary is None:
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and arg_values
                and Tag.SHARD_RAW in arg_values[0][1]
            ):
                if self._once("accum", node.lineno, node.col_offset):
                    self.facts.accums.append(
                        AccumEvent(
                            node.lineno,
                            node.col_offset,
                            arg_values[0][0],
                            arg_values[0][1],
                            "`sum(...)` over worker-completion-order values",
                        )
                    )
            return
        for label, (roots, tags) in _labelled_args(node, arg_values, kw_names, kw_values):
            if self._once("boundary", node.lineno, node.col_offset, label):
                self.facts.boundaries.append(
                    BoundaryEvent(
                        boundary, node.lineno, node.col_offset, label, roots, tags
                    )
                )

    def _record_shard_entry(
        self, node: ast.Call, qname: str | None, attr: str | None
    ) -> None:
        kind: str | None = None
        if qname in _BOUNDARIES and _BOUNDARIES[qname] in _SESSION_METHODS:
            kind = _SESSION_METHODS[_BOUNDARIES[qname]]
        elif qname is None and attr == "fleet_session":
            kind = "session"
        if kind is None or not node.args:
            return
        factory_expr = node.args[0]
        factory: str | None = None
        if isinstance(factory_expr, ast.Name):
            factory = self.index.resolve_name(self.info.module, factory_expr.id)
        elif isinstance(factory_expr, ast.Attribute):
            factory = self._callee_qname(factory_expr)
        if factory is None:
            return
        if self._once("entry", node.lineno, node.col_offset, factory):
            self.facts.shard_entries.append(
                ShardEntryEvent(factory, kind, node.lineno, node.col_offset)
            )


def _labelled_args(
    node: ast.Call,
    arg_values: list[Value],
    kw_names: tuple[str | None, ...],
    kw_values: list[Value],
) -> Iterator[tuple[str, Value]]:
    for i, value in enumerate(arg_values):
        yield (_render(node.args[i]) or f"arg {i}", value)
    for name, value in zip(kw_names, kw_values):
        yield (f"{name}=" if name else "**", value)


def _render(node: ast.expr) -> str:
    """Compact source-ish rendering for messages (best effort)."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we emit
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


class ProjectAnalysis:
    """Dataflow facts and summaries for every indexed function.

    Construction runs the intraprocedural pass over each function, then
    iterates analysis + summary closure to a fixpoint (bounded — the
    lattice is finite and summaries only grow) so that call-result tags,
    alias-through returns and transitive parameter effects propagate
    through call chains.
    """

    #: Fixpoint iteration bound; chains deeper than this many calls are
    #: out of scope for the approximation (and unheard of in this repo).
    MAX_PASSES = 4

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.facts: dict[str, FunctionFacts] = {}
        self.summaries: dict[str, FunctionSummary] = {}
        for _ in range(self.MAX_PASSES):
            if not self._pass():
                break

    def _pass(self) -> bool:
        """One analyze-all + summarize-all round; True if anything grew."""
        for info in self.index.iter_functions():
            self.facts[info.qname] = _FunctionAnalyzer(
                info, self.index, self.summaries
            ).run()
        changed = False
        for qname, facts in self.facts.items():
            summary = self._summarize(qname, facts)
            if self.summaries.get(qname) != summary:
                self.summaries[qname] = summary
                changed = True
        return changed

    def _summarize(self, qname: str, facts: FunctionFacts) -> FunctionSummary:
        mutates = self._param_set(facts, (m.roots for m in facts.mutations))
        merge_params = self._param_set(facts, (s.roots for s in facts.sinks))
        accum_params = self._param_set(facts, (a.roots for a in facts.accums))
        boundary_params = self._param_set(
            facts, (b.roots for b in facts.boundaries)
        )
        # Close over callees: passing parameter i where a callee mutates
        # (or sinks) that position charges the effect to parameter i.
        for call in facts.calls:
            callee = self._callee_summary(call)
            if callee is None:
                continue
            summary, offset = callee
            for pos, roots in enumerate(call.arg_roots):
                callee_param = pos + offset
                for root in roots:
                    if root.kind != "param":
                        continue
                    i = int(root.key)
                    if callee_param in summary.mutates:
                        mutates = mutates | {i}
                    if callee_param in summary.merge_params:
                        merge_params = merge_params | {i}
                    if callee_param in summary.accum_params:
                        accum_params = accum_params | {i}
                    if callee_param in summary.boundary_params:
                        boundary_params = boundary_params | {i}
            if 0 in summary.mutates and not call.is_constructor:
                # Mutating ``self`` counts against the receiver.
                for root in call.receiver_roots:
                    if root.kind == "param":
                        mutates = mutates | {int(root.key)}
        return FunctionSummary(
            returns_tags=facts.returns_tags,
            returns_params=facts.returns_params,
            mutates=frozenset(mutates),
            merge_params=frozenset(merge_params),
            accum_params=frozenset(accum_params),
            boundary_params=frozenset(boundary_params),
        )

    def _callee_summary(
        self, call: CallEvent
    ) -> tuple[FunctionSummary, int] | None:
        """Summary of the resolved callee plus its parameter offset.

        Constructor calls resolve to ``__init__`` with offset 1 (the
        call's positional 0 is the method's parameter 1); bound method
        calls likewise skip ``self``.
        """
        if call.callee is None:
            return None
        if call.is_constructor:
            cls = self.index.classes.get(call.callee)
            init = cls.init_qname if cls else None
            if init is None or init not in self.summaries:
                return None
            return (self.summaries[init], 1)
        summary = self.summaries.get(call.callee)
        if summary is None:
            return None
        info = self.index.functions.get(call.callee)
        offset = 1 if info is not None and info.is_method else 0
        return (summary, offset)

    @staticmethod
    def _param_set(
        facts: FunctionFacts, root_sets: Iterator[RootSet]
    ) -> frozenset[int]:
        out: set[int] = set()
        for roots in root_sets:
            for root in roots:
                if root.kind == "param":
                    out.add(int(root.key))
        return frozenset(out)

    def facts_for_module(self, relpath_str: str) -> Iterator[FunctionFacts]:
        """Facts of functions defined in the module at *relpath_str*."""
        for facts in self.facts.values():
            if str(facts.info.module.relpath) == relpath_str:
                yield facts
