"""Whole-program view for the ``--deep`` interprocedural rules.

The per-file rules (R001–R008) see one :class:`ParsedModule` at a time;
the shard-divergence rules (R009–R012) need to follow a value across
function and module boundaries — an RNG built in a driver and smuggled
into a shard spec, a helper that mutates whatever repository it is
handed. This module supplies the project-level substrate:

* :func:`module_name` maps a lint-relative path to a dotted module name
  (``src/repro/parallel/reduce.py`` → ``repro.parallel.reduce``).
* :class:`ProjectIndex` is the symbol table: every function, method and
  class in the analyzed file set, keyed by qualified name, plus
  resolution of module-local names and imported names back to index
  entries.
* :class:`ProjectContext` bundles the index with the dataflow analysis
  and approximate call graph, built **once per lint run** — the deep
  rules only read it. When the linted paths do not include the ``repro``
  package itself (linting a fixture corpus, say), the installed package
  sources are parsed into the index too, so calls into
  ``repro.parallel`` / ``repro.obs`` still resolve.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # circular at runtime only: the engine builds the context
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.dataflow import ProjectAnalysis
    from repro.analysis.engine import ParsedModule

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProjectIndex",
    "ProjectContext",
    "module_name",
]


def module_name(relpath: PurePosixPath) -> str:
    """Dotted module name for *relpath*.

    Anchors at the last path component named ``repro`` when present (so
    ``src/repro/x.py``, ``repro/x.py`` and an absolute site-packages
    path all normalize to ``repro.x``); other files — test fixtures,
    scripts — keep their full relative dotted path. ``__init__.py``
    names the package itself.
    """
    parts = list(relpath.parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][: -len(".py")]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(part for part in parts if part and part != "/")


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str
    module: "ParsedModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Owning class qname for methods, ``None`` for plain functions.
    class_qname: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    @property
    def params(self) -> tuple[str, ...]:
        """Positional parameter names, ``self`` included for methods."""
        args = self.node.args
        return tuple(a.arg for a in (*args.posonlyargs, *args.args))

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: its methods by bare name."""

    qname: str
    module: "ParsedModule"
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)

    @property
    def init_qname(self) -> str | None:
        return self.methods.get("__init__")


Symbol = Union[FunctionInfo, ClassInfo]


class ProjectIndex:
    """Symbol table over a set of parsed modules."""

    def __init__(self, modules: Sequence["ParsedModule"]) -> None:
        #: Module dotted name -> parsed module.
        self.modules: dict[str, "ParsedModule"] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for module in modules:
            name = module_name(module.relpath)
            if name in self.modules:
                continue  # first writer wins (linted copy over package copy)
            self.modules[name] = module
            self._index_body(module, name, module.tree.body, None)

    def _index_body(
        self,
        module: "ParsedModule",
        prefix: str,
        body: Sequence[ast.stmt],
        class_info: ClassInfo | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qname=qname,
                    module=module,
                    node=node,
                    class_qname=class_info.qname if class_info else None,
                )
                self.functions[qname] = info
                if class_info is not None:
                    class_info.methods[node.name] = qname
                # Nested defs resolve for the call graph but are not
                # methods of any class.
                self._index_body(module, qname, node.body, None)
            elif isinstance(node, ast.ClassDef):
                qname = f"{prefix}.{node.name}"
                cls = ClassInfo(qname=qname, module=module, node=node)
                self.classes[qname] = cls
                self._index_body(module, qname, node.body, cls)

    def lookup(self, qname: str) -> Symbol | None:
        """The function or class registered under *qname*, if any."""
        return self.functions.get(qname) or self.classes.get(qname)

    def canonical(self, qname: str) -> str:
        """Definition qname for *qname*, following re-exports.

        ``from repro.parallel import FleetExecutor`` yields the alias
        ``repro.parallel.FleetExecutor``; the class is defined as
        ``repro.parallel.executor.FleetExecutor``. This walks package
        ``__init__`` import maps (bounded, cycle-safe) until it lands on
        an indexed symbol; a trailing ``.method`` segment is carried
        through a class re-export. Unresolvable names pass unchanged, so
        stdlib qnames stay usable as table keys.
        """
        resolved = self._canonical_symbol(qname)
        if resolved is not None:
            return resolved
        head, _, tail = qname.rpartition(".")
        if head:
            cls = self._canonical_symbol(head)
            if cls is not None and cls in self.classes:
                return f"{cls}.{tail}"
        return qname

    def _canonical_symbol(self, qname: str) -> str | None:
        seen: set[str] = set()
        current = qname
        while current not in seen:
            seen.add(current)
            if current in self.functions or current in self.classes:
                return current
            head, _, tail = current.rpartition(".")
            module = self.modules.get(head)
            if module is None:
                return None
            requalified = module.imports.qualify(ast.Name(id=tail))
            if requalified is None:
                return None
            current = requalified
        return None

    def resolve_name(self, module: "ParsedModule", name: str) -> str | None:
        """Resolve bare *name* in *module* to a project qname.

        Tries module-local definitions first, then the module's imports
        (``from repro.cloud.fleet import FleetSpec`` makes ``FleetSpec``
        resolve to ``repro.cloud.fleet.FleetSpec``), following package
        re-exports to the definition. Returns ``None`` for names the
        project does not define.
        """
        local = f"{module_name(module.relpath)}.{name}"
        if local in self.functions or local in self.classes:
            return local
        qualified = module.imports.qualify(ast.Name(id=name))
        if qualified is not None:
            definition = self.canonical(qualified)
            if self.lookup(definition) is not None:
                return definition
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


#: Package modules always folded into the index: the determinism seams
#: the deep rules resolve against (executors, reducers, recorders, RNG
#: helpers, fleet specs). When linting ``src/`` these are already in the
#: module set and the fill-in is a no-op; when linting a fixture corpus
#: they supply the class/function definitions that make ``out =
#: MetricsRegistry()`` or ``executor.fleet_session(...)`` resolvable.
_SEAM_MODULES = (
    "common/rng.py",
    "cloud/fleet.py",
    "parallel/__init__.py",
    "parallel/executor.py",
    "parallel/reduce.py",
    "obs/__init__.py",
    "obs/metrics.py",
    "obs/trace.py",
)


def _package_files() -> list[Path]:
    """Determinism-seam sources of the installed ``repro`` package."""
    import repro

    pkg_file = getattr(repro, "__file__", None)
    if pkg_file is None:
        return []
    pkg_dir = Path(pkg_file).resolve().parent
    return [
        path
        for rel in _SEAM_MODULES
        if (path := pkg_dir / rel).is_file()
    ]


class ProjectContext:
    """Everything the deep rules read: index, dataflow facts, call graph.

    Build with :meth:`build`; the dataflow fixpoint and call graph are
    computed eagerly (once), so per-module rule dispatch is cheap.
    """

    def __init__(
        self, index: ProjectIndex, analysis: "ProjectAnalysis", graph: "CallGraph"
    ) -> None:
        self.index = index
        self.analysis = analysis
        self.graph = graph

    @classmethod
    def build(
        cls,
        modules: Sequence["ParsedModule"],
        parser: Callable[[Path], object] | None = None,
    ) -> "ProjectContext":
        """Build the whole-program context over *modules*.

        *parser* is the engine's parse callable (``path -> ParsedModule
        or Finding``); when given, any ``repro`` package sources missing
        from *modules* are parsed and added so interprocedural
        resolution sees the real executor/reducer/rng definitions even
        when only a fixture tree is being linted.
        """
        from repro.analysis.callgraph import CallGraph
        from repro.analysis.dataflow import ProjectAnalysis
        from repro.analysis.engine import ParsedModule

        all_modules = list(modules)
        if parser is not None:
            have = {m.path.resolve() for m in all_modules}
            for path in _package_files():
                if path in have:
                    continue
                parsed = parser(path)
                if isinstance(parsed, ParsedModule):
                    all_modules.append(parsed)
        index = ProjectIndex(all_modules)
        analysis = ProjectAnalysis(index)
        graph = CallGraph.from_analysis(analysis)
        return cls(index, analysis, graph)
