"""Import resolution: map names in a module back to qualified dotted paths.

Rules reason about *qualified* names — ``numpy.random.seed`` — while
source code uses whatever local aliases its imports introduced (``np``,
``from numpy.random import default_rng``, ``import random as rnd``). An
:class:`ImportMap` is built once per parsed module and resolves attribute
chains and bare names to their fully qualified form, or ``None`` when the
root of the chain is not an imported module (``self.rng.random()`` must
never be mistaken for the stdlib global stream).
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap"]


class ImportMap:
    """Local alias -> qualified module/attribute mapping for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import numpy.random`` binds the *root* module name
                    # unless aliased, in which case the alias is the full
                    # dotted path.
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never shadow stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.expr) -> str | None:
        """Qualified dotted name of *node*, or ``None``.

        Resolves ``Name`` and ``Attribute`` chains whose root is an
        imported alias: with ``import numpy as np``, ``np.random.seed``
        resolves to ``"numpy.random.seed"``. Chains rooted in anything
        else (locals, ``self``, call results) resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def imports(self, module: str) -> bool:
        """Whether any alias resolves into *module* (dotted prefix match)."""
        return any(
            target == module or target.startswith(module + ".")
            for target in self._aliases.values()
        )
