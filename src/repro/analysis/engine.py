"""The lint engine: file discovery, parsing, rule dispatch, suppressions.

One :class:`Linter` is built per run with a *root* directory (paths in
findings are reported relative to it) and an optional rule selection. It
walks the requested paths, parses each ``.py`` file once, hands the
:class:`ParsedModule` to every rule, and filters out findings suppressed
by a ``# repro: noqa[RULE]`` comment on the offending line.

Suppression syntax::

    x = np.random.default_rng()   # repro: noqa[R003]  interactive helper
    y = time.time()               # repro: noqa[R002,R001]
    z = random.random()           # repro: noqa  (blanket; avoid)
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from repro.analysis.findings import Finding, Severity
from repro.analysis.imports import ImportMap
from repro.analysis.registry import Rule, all_rules, get_rule

__all__ = [
    "ParsedModule",
    "Linter",
    "lint_paths",
    "is_library_module",
    "is_rng_module",
    "in_simulation_path",
]

#: Directories never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True, slots=True)
class ParsedModule:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    relpath: PurePosixPath
    tree: ast.Module
    lines: tuple[str, ...]
    imports: ImportMap

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether *rule_id* is suppressed on physical *line* (1-based)."""
        if not 1 <= line <= len(self.lines):
            return False
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True  # blanket ``# repro: noqa``
        return rule_id in {part.strip() for part in listed.split(",")}


def is_library_module(relpath: PurePosixPath) -> bool:
    """Whether *relpath* is library code (inside the ``repro`` package).

    Library-only rules (route RNG construction through
    ``repro.common.rng``, knob-registry consistency) apply here but not to
    tests or benchmarks, which legitimately build local seeded generators
    and out-of-range knob values.
    """
    return "repro" in relpath.parts


def is_rng_module(relpath: PurePosixPath) -> bool:
    """Whether *relpath* is the sanctioned RNG module ``common/rng.py``."""
    return relpath.parts[-2:] == ("common", "rng.py")


def in_simulation_path(relpath: PurePosixPath) -> bool:
    """Whether *relpath* is simulation-facing, non-benchmark code.

    The determinism rules treat ``dbsim/``, ``core/``, ``tuners/`` and
    ``workloads/`` as simulation paths: anything there runs inside seeded
    experiments and must never read wall-clock time.
    """
    parts = set(relpath.parts[:-1])
    if not parts & {"dbsim", "core", "tuners", "workloads"}:
        return False
    return "bench" not in relpath.parts[-1]


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files pass through)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if any(
                part in _SKIP_DIRS or part.endswith(".egg-info")
                for part in candidate.parts
            ):
                continue
            seen.add(resolved)
            yield candidate


class Linter:
    """Run a set of rules over a set of paths.

    Parameters
    ----------
    root:
        Findings report paths relative to this directory (default: cwd).
    select:
        Rule ids to run; ``None`` runs every registered rule.
    deep:
        Run the interprocedural rules too. These need a whole-program
        :class:`~repro.analysis.project.ProjectContext` (symbol index,
        dataflow, call graph), built **once per run** after all files
        are parsed. Explicitly selecting a deep rule implies ``deep``.
    """

    def __init__(
        self,
        root: Path | None = None,
        select: Sequence[str] | None = None,
        deep: bool = False,
    ) -> None:
        self.root = (root or Path.cwd()).resolve()
        if select is None:
            rule_classes = all_rules()
        else:
            rule_classes = [get_rule(rule_id) for rule_id in select]
        instances = [cls() for cls in rule_classes]
        self.deep = deep or (
            select is not None
            and any(rule.requires_project for rule in instances)
        )
        if not self.deep:
            instances = [r for r in instances if not r.requires_project]
        self.rules: list[Rule] = instances
        self.shallow_rules = [r for r in instances if not r.requires_project]
        self.deep_rules = [r for r in instances if r.requires_project]

    def parse(self, path: Path) -> ParsedModule | Finding:
        """Parse one file; a syntax error becomes an ``R000`` finding."""
        relpath = self._relpath(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return Finding(
                "R000",
                Severity.ERROR,
                relpath,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"syntax error: {exc.msg}",
            )
        return ParsedModule(
            path=path,
            relpath=relpath,
            tree=tree,
            lines=tuple(source.splitlines()),
            imports=ImportMap(tree),
        )

    def lint_file(self, path: Path) -> list[Finding]:
        """All unsuppressed findings for one file."""
        return self.lint_paths([path])

    def lint_paths(self, paths: Sequence[Path]) -> list[Finding]:
        """All unsuppressed findings under *paths*, sorted.

        Two phases: every file is parsed once and run through the
        per-file rules; then, in deep mode, a single
        :class:`~repro.analysis.project.ProjectContext` is built over
        the full parsed set (plus the ``repro`` determinism-seam
        modules) and the interprocedural rules run per module against
        it. Suppression comments apply identically to both phases.
        """
        findings: list[Finding] = []
        modules: list[ParsedModule] = []
        for path in iter_python_files(paths):
            parsed = self.parse(path)
            if isinstance(parsed, Finding):
                findings.append(parsed)
                continue
            modules.append(parsed)
            findings.extend(self._check_module(parsed, self.shallow_rules))
        if self.deep and self.deep_rules and modules:
            from repro.analysis.project import ProjectContext

            project = ProjectContext.build(modules, parser=self.parse)
            for parsed in modules:
                findings.extend(
                    finding
                    for rule in self.deep_rules
                    for finding in rule.check_deep(parsed, project)
                    if not parsed.suppressed(finding.rule, finding.line)
                )
        findings.sort(key=Finding.sort_key)
        return findings

    def _check_module(
        self, parsed: ParsedModule, rules: Sequence[Rule]
    ) -> list[Finding]:
        return [
            finding
            for rule in rules
            for finding in rule.check(parsed)
            if not parsed.suppressed(finding.rule, finding.line)
        ]

    def _relpath(self, path: Path) -> PurePosixPath:
        resolved = path.resolve()
        try:
            return PurePosixPath(resolved.relative_to(self.root))
        except ValueError:
            return PurePosixPath(resolved)


def lint_paths(
    paths: Sequence[Path],
    root: Path | None = None,
    select: Sequence[str] | None = None,
    deep: bool = False,
) -> list[Finding]:
    """Convenience wrapper: lint *paths* with a fresh :class:`Linter`."""
    return Linter(root=root, select=select, deep=deep).lint_paths(paths)
