"""Reporters: render lint findings for humans (text) or machines (JSON)."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json", "render"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE [severity] message`` line per finding.

    Ends with a one-line summary so a truncated CI log still shows the
    count; an empty run renders a single "clean" line.
    """
    if not findings:
        return "repro lint: no findings"
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: ``{"findings": [...], "count": n}``."""
    payload = {
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.value,
                "path": str(finding.path),
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2)


_FORMATS = {"text": render_text, "json": render_json}


def render(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render *findings* in *fmt* ("text" or "json")."""
    try:
        renderer = _FORMATS[fmt]
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}; known: {sorted(_FORMATS)}") from None
    return renderer(findings)
