"""Approximate call graph over the :class:`~repro.analysis.project.ProjectIndex`.

Edges come from the dataflow pass's resolved :class:`CallEvent`s, so the
graph inherits the same best-effort resolution (imports, module-local
names, ``self.method``, constructor-typed locals). Two deliberate
over-approximations keep shard reachability sound for the deep rules:

* A **constructor call edges to every method of the class**, not just
  ``__init__`` — a factory returning ``Worker(spec, idx)`` hands the
  executor an object whose ``step``/``close`` will run in the shard
  process, even though no call site for them is visible in the project.
* ``fleet_session(factory, ...)`` / ``map(fn, ...)`` callables recorded
  as :class:`ShardEntryEvent`s are exposed via :meth:`shard_entries`, so
  rules can seed reachability from the worker side of the pipe.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.analysis.dataflow import ProjectAnalysis, ShardEntryEvent

__all__ = ["CallGraph"]


class CallGraph:
    """Directed caller → callee graph keyed by qualified names."""

    def __init__(self) -> None:
        self.edges: dict[str, set[str]] = defaultdict(set)
        self.reverse: dict[str, set[str]] = defaultdict(set)
        #: (entry-owning function qname, event) pairs.
        self.entries: list[tuple[str, ShardEntryEvent]] = []

    @classmethod
    def from_analysis(cls, analysis: ProjectAnalysis) -> "CallGraph":
        graph = cls()
        index = analysis.index
        for qname, facts in analysis.facts.items():
            for call in facts.calls:
                if call.callee is None:
                    continue
                if call.is_constructor:
                    cls_info = index.classes.get(call.callee)
                    if cls_info is None:
                        continue
                    for method_qname in cls_info.methods.values():
                        graph.add_edge(qname, method_qname)
                elif call.callee in index.functions:
                    graph.add_edge(qname, call.callee)
            for entry in facts.shard_entries:
                graph.entries.append((qname, entry))
                graph._add_entry_edges(index, entry)
        return graph

    def _add_entry_edges(self, index: object, entry: ShardEntryEvent) -> None:
        # The factory/map-fn itself runs in the shard; make it reachable
        # from a synthetic shard root so rules can ask one question.
        self.add_edge(_SHARD_ROOT, entry.factory)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges[caller].add(callee)
        self.reverse[callee].add(caller)

    def callees(self, qname: str) -> frozenset[str]:
        return frozenset(self.edges.get(qname, ()))

    def callers(self, qname: str) -> frozenset[str]:
        return frozenset(self.reverse.get(qname, ()))

    def reachable(self, roots: Iterable[str]) -> frozenset[str]:
        """All qnames reachable from *roots* (roots included)."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            stack.extend(self.edges.get(qname, ()))
        return frozenset(seen)

    def shard_reachable(self) -> frozenset[str]:
        """Functions that may execute inside a shard/worker process.

        Seeded from every recorded shard entry (``fleet_session``
        factories and ``map`` functions) and closed over call edges —
        including the constructor → all-methods expansion, so a worker
        class's ``step`` is shard-reachable through its factory.
        """
        out = self.reachable([_SHARD_ROOT])
        return frozenset(q for q in out if q != _SHARD_ROOT)

    def shard_entry_events(self) -> Iterator[tuple[str, ShardEntryEvent]]:
        yield from self.entries


_SHARD_ROOT = "<shard>"
