"""``repro lint``: AST-based invariant checking for the reproduction.

The headline guarantees of this repository — byte-identical seeded
benches, correct TDE throttle decisions, version-keyed caches that never
serve stale state — rest on conventions that are easy to break silently.
This package makes them machine-checked:

* :mod:`repro.analysis.engine` walks files, parses each module once and
  dispatches registered rules; ``# repro: noqa[RULE]`` comments suppress
  findings line by line.
* :mod:`repro.analysis.rules` ships the builtin invariants: per-file
  checks R001–R008 (no global RNG state, no wall-clock reads in
  simulation paths, seeds must be threaded, ``_version`` bumps on every
  mutation, knob literals must agree with the registry, recorder
  threading, bounded control-plane loops, no snapshot pickling in loops)
  and the interprocedural ``--deep`` checks R009–R012 (shard-state
  mutation, unordered iteration feeding a merge, order-sensitive float
  accumulation, RNGs crossing shard boundaries unsubstreamed).
* :mod:`repro.analysis.project` / :mod:`repro.analysis.dataflow` /
  :mod:`repro.analysis.callgraph` supply the whole-program substrate the
  deep rules read: a symbol index, a taint-style dataflow pass and an
  approximate call graph, built once per lint run.
* :mod:`repro.analysis.reporters` renders findings as text or JSON.

Run it as ``repro lint src/`` or ``repro lint --deep src/`` (see
:mod:`repro.cli`), or call :func:`lint_paths` directly.
"""

from repro.analysis.engine import Linter, ParsedModule, lint_paths
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ProjectContext, ProjectIndex
from repro.analysis.registry import (
    DeepRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.analysis.reporters import render, render_json, render_text

__all__ = [
    "DeepRule",
    "Finding",
    "Linter",
    "ParsedModule",
    "ProjectContext",
    "ProjectIndex",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
    "render",
    "render_json",
    "render_text",
]
