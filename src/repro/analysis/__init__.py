"""``repro lint``: AST-based invariant checking for the reproduction.

The headline guarantees of this repository — byte-identical seeded
benches, correct TDE throttle decisions, version-keyed caches that never
serve stale state — rest on conventions that are easy to break silently.
This package makes them machine-checked:

* :mod:`repro.analysis.engine` walks files, parses each module once and
  dispatches registered rules; ``# repro: noqa[RULE]`` comments suppress
  findings line by line.
* :mod:`repro.analysis.rules` ships the builtin invariants (R001–R005):
  no global RNG state, no wall-clock reads in simulation paths, seeds
  must be threaded, ``_version`` bumps on every mutation, knob literals
  must agree with the registry.
* :mod:`repro.analysis.reporters` renders findings as text or JSON.

Run it as ``repro lint src/`` (see :mod:`repro.cli`), or call
:func:`lint_paths` directly.
"""

from repro.analysis.engine import Linter, ParsedModule, lint_paths
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.reporters import render, render_json, render_text

__all__ = [
    "Finding",
    "Linter",
    "ParsedModule",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
    "render",
    "render_json",
    "render_text",
]
