"""R002 no-wallclock-in-sim: simulation code must not read real time.

Everything under ``dbsim/``, ``core/``, ``tuners/`` and ``workloads/``
advances a *simulated* clock (seconds passed around explicitly, e.g.
``SimulatedDatabase.clock_s``). A single ``time.time()`` in one of those
paths makes results depend on the host's wall clock and silently breaks
byte-identical seeded reruns. Benchmark harnesses measure real elapsed
time by design and are exempt (files with "bench" in the name, and
everything outside the simulation paths).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import ParsedModule, in_simulation_path
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["NoWallclockInSimRule"]

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class NoWallclockInSimRule(Rule):
    """R002: wall-clock reads are banned in simulation paths."""

    id = "R002"
    title = "wall-clock read in simulation code"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not in_simulation_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.imports.qualify(node.func)
            if qualified in _WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"`{qualified}()` reads the wall clock inside a "
                    "simulation path; thread simulated seconds explicitly",
                )
