"""R005 knob-registry-consistency: literals must agree with ``dbsim/knobs.py``.

DOT-style tuners degrade silently when knob metadata drifts: a typo'd
knob name keys a dict nobody reads, a hard-coded bound disagrees with the
registry and the tuner explores a region the database rejects. This rule
loads the live knob registry (both catalogs) and cross-checks every
module against it:

* **near-miss names** — a string used where knob names live (a subscript
  key, or a key in a dict that also contains real knob names) that is not
  a registered knob but is within edit distance of one;
* **out-of-range values** — a numeric literal assigned to a registered
  knob name in a dict literal that falls outside the union of the
  catalogs' ``[min_value, max_value]`` ranges;
* **shadow definitions** — a ``KnobDef(...)`` constructed outside
  ``dbsim/knobs.py`` whose default/min/max disagree with the registry
  entry of the same name.

Only library code is checked: tests legitimately exercise out-of-range
values (clamping, validation) and benchmarks fabricate knob-like keys.
"""

from __future__ import annotations

import ast
import difflib
from collections.abc import Iterator

from repro.analysis.engine import ParsedModule, is_library_module
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["KnobRegistryRule"]


def _load_registry() -> dict[str, tuple[float, float, str]]:
    """name -> (min, max, unit) across both catalogs (widest bounds win)."""
    from repro.dbsim.knobs import catalog_for

    registry: dict[str, tuple[float, float, str]] = {}
    for flavor in ("postgres", "mysql"):
        for knob in catalog_for(flavor):
            if knob.name in registry:
                low, high, unit = registry[knob.name]
                registry[knob.name] = (
                    min(low, knob.min_value),
                    max(high, knob.max_value),
                    unit,
                )
            else:
                registry[knob.name] = (
                    knob.min_value,
                    knob.max_value,
                    knob.unit.value,
                )
    return registry


def _literal_number(node: ast.expr) -> float | None:
    """The numeric value of a constant (or unary-minus constant), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


@register
class KnobRegistryRule(Rule):
    """R005: hard-coded knob names/bounds must match the registry."""

    id = "R005"
    title = "hard-coded knob metadata disagrees with dbsim/knobs.py"

    def __init__(self) -> None:
        self._registry: dict[str, tuple[float, float, str]] | None = None

    @property
    def registry(self) -> dict[str, tuple[float, float, str]]:
        if self._registry is None:
            self._registry = _load_registry()
        return self._registry

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not is_library_module(module.relpath):
            return
        if module.relpath.parts[-2:] == ("dbsim", "knobs.py"):
            return  # the registry itself
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_dict(module, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_knobdef(module, node)

    # -- helpers ----------------------------------------------------------

    def _near_miss(self, name: str) -> str | None:
        """A registered knob *name* is confusable with, if any."""
        matches = difflib.get_close_matches(
            name, self.registry.keys(), n=1, cutoff=0.85
        )
        return matches[0] if matches else None

    def _check_dict(
        self, module: ParsedModule, node: ast.Dict
    ) -> Iterator[Finding]:
        keys = [
            (key, key.value)
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        ]
        if not any(name in self.registry for _, name in keys):
            return  # not a knob-valued dict
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            name = key.value
            if name not in self.registry:
                hit = self._near_miss(name)
                if hit is not None:
                    yield self.finding(
                        module, key.lineno, key.col_offset,
                        f"unknown knob {name!r} in a knob-valued dict; "
                        f"did you mean {hit!r}?",
                    )
                continue
            number = _literal_number(value)
            if number is None:
                continue
            low, high, unit = self.registry[name]
            if not low <= number <= high:
                yield self.finding(
                    module, value.lineno, value.col_offset,
                    f"value {number:g} for knob {name!r} is outside the "
                    f"registry range [{low:g}, {high:g}] {unit}",
                )

    def _check_subscript(
        self, module: ParsedModule, node: ast.Subscript
    ) -> Iterator[Finding]:
        key = node.slice
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return
        name = key.value
        if name in self.registry:
            return
        hit = self._near_miss(name)
        if hit is not None:
            yield self.finding(
                module, key.lineno, key.col_offset,
                f"subscript key {name!r} is not a registered knob; "
                f"did you mean {hit!r}?",
            )

    def _check_knobdef(
        self, module: ParsedModule, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        func_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if func_name != "KnobDef" or not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return
        name = first.value
        if name not in self.registry:
            return
        low, high, _unit = self.registry[name]
        # Positional layout: name, knob_class, unit, default, min, max.
        labelled = dict(zip(("default", "min_value", "max_value"), node.args[3:6]))
        for kw in node.keywords:
            if kw.arg in ("default", "min_value", "max_value"):
                labelled[kw.arg] = kw.value
        expected = {"min_value": low, "max_value": high}
        for label, arg in labelled.items():
            number = _literal_number(arg)
            if number is None:
                continue
            if label == "default":
                if not low <= number <= high:
                    yield self.finding(
                        module, arg.lineno, arg.col_offset,
                        f"shadow KnobDef for {name!r} sets default "
                        f"{number:g} outside the registry range "
                        f"[{low:g}, {high:g}]",
                    )
                continue
            if number != expected[label]:
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"shadow KnobDef for {name!r} sets {label}="
                    f"{number:g}, registry says {expected[label]:g}",
                )
