"""R006 bounded-control-plane: no swallowed errors, no unbounded retries.

The control plane (``core/`` and ``cloud/``) is the code that must keep a
fleet alive while components fail, and it has two classic ways to rot:

- **over-broad exception handling** — a bare ``except:`` (or ``except
  Exception`` / ``except BaseException``) around an apply or routing call
  hides the crash/unavailable signals the DFA, reconciler and circuit
  breakers are built to act on. Failures must be caught by their typed
  exceptions (``TunerUnavailable``, ``DatabaseCrashed``, ...).
- **unbounded retry loops** — a ``while True:`` (or other constant-true
  condition) with no reachable ``break``/``return``/``raise`` can spin a
  step of the simulated fleet forever. Every retry loop must carry an
  attempt bound or a deadline in its condition, or an explicit escape.

Tests and benchmarks are exempt — the rule governs library modules only.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePosixPath

from repro.analysis.engine import ParsedModule, is_library_module
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["BoundedControlPlaneRule", "in_control_plane_path"]

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def in_control_plane_path(relpath: PurePosixPath) -> bool:
    """Whether *relpath* is library code under ``core/`` or ``cloud/``."""
    if not is_library_module(relpath):
        return False
    return bool(set(relpath.parts[:-1]) & {"core", "cloud"})


def _broad_names(handler_type: ast.expr | None) -> Iterator[str]:
    """Over-broad exception class names referenced by one handler type."""
    if handler_type is None:
        return
    candidates = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_EXCEPTIONS:
            yield candidate.id


def _is_constant_true(test: ast.expr) -> bool:
    """Whether a loop condition is a constant that always evaluates true."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _has_escape(loop: ast.While) -> bool:
    """Whether *loop* can exit through break/return/raise in its own body.

    ``break`` only counts at the loop's own level (a break inside a
    nested loop exits that loop, not this one); ``return`` and ``raise``
    count anywhere in the body except inside nested function definitions,
    which execute later, not as part of the loop.
    """

    def scan(stmts: list[ast.stmt], own_level: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.Break) and own_level:
                return True
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return True
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            nested_loop = isinstance(stmt, (ast.While, ast.For, ast.AsyncFor))
            for field in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field, None)
                if not children:
                    continue
                if field == "handlers":
                    children = [h for handler in children for h in handler.body]
                if scan(children, own_level and not nested_loop):
                    return True
        return False

    return scan(loop.body, own_level=True)


@register
class BoundedControlPlaneRule(Rule):
    """R006: control-plane failure handling must be typed and bounded."""

    id = "R006"
    title = "unbounded retry or over-broad except in control-plane code"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not in_control_plane_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "bare `except:` swallows the failure signals the "
                        "control plane must react to; catch the typed "
                        "exception instead",
                    )
                    continue
                for name in _broad_names(node.type):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"`except {name}` is over-broad for control-plane "
                        "code; catch the typed exception instead",
                    )
            elif isinstance(node, ast.While):
                if _is_constant_true(node.test) and not _has_escape(node):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "retry loop with a constant-true condition and no "
                        "break/return/raise: bound it with an attempt "
                        "count or a deadline",
                    )
