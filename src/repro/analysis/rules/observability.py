"""R007 recorder-must-thread: observability seams must stay wired.

Core components take a ``recorder`` parameter instead of importing the
obs layer — that DI seam is the observability design's layering
contract. The seam only helps if intermediate constructors *thread* the
recorder: a core function that has a recorder in scope and builds a
recorder-aware component without passing one silently severs the trace
tree, because the component falls back to the no-op ``NullRecorder``
and every span downstream disappears.

Mirrors R003's shape for RNGs ("construction must state its seed"):
construction must state its recorder wherever one is in scope. Aware
callables are discovered live — the rule imports ``repro.core`` and
collects every class or function with a ``recorder`` parameter, the
same way R005 reads the live knob registry — so newly instrumented
components are covered without touching the rule.
"""

from __future__ import annotations

import ast
import inspect
from collections.abc import Iterator
from functools import lru_cache

from repro.analysis.engine import ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["RecorderMustThreadRule"]


@lru_cache(maxsize=1)
def _aware_callables() -> frozenset[str]:
    """Qualified names of ``repro.core`` callables taking ``recorder``."""
    import importlib
    import pkgutil

    import repro.core

    aware: set[str] = set()
    for info in pkgutil.walk_packages(
        repro.core.__path__, prefix="repro.core."
    ):
        try:
            module = importlib.import_module(info.name)
        except Exception:  # pragma: no cover - optional deps may be absent
            continue
        for name, obj in vars(module).items():
            if getattr(obj, "__module__", None) != info.name:
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            try:
                signature = inspect.signature(obj)
            except (TypeError, ValueError):  # pragma: no cover
                continue
            if "recorder" in signature.parameters:
                aware.add(f"{info.name}.{name}")
    return frozenset(aware)


def _has_recorder_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = node.args
    every = (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *((args.vararg,) if args.vararg else ()),
        *((args.kwarg,) if args.kwarg else ()),
    )
    return any(arg.arg == "recorder" for arg in every)


def _passes_recorder(call: ast.Call) -> bool:
    """Whether *call* states a recorder (keyword, ``**kwargs``, or a bare
    positional ``recorder`` name)."""
    for keyword in call.keywords:
        if keyword.arg == "recorder" or keyword.arg is None:
            return True
    return any(
        isinstance(arg, ast.Name) and arg.id == "recorder"
        for arg in call.args
    )


@register
class RecorderMustThreadRule(Rule):
    """R007: recorder-aware components built in-scope must get the recorder.

    Scope: modules under ``core/`` only — that is where the DI seam
    lives; experiments and tests legitimately build un-traced components.
    A function is "in scope" when it has a ``recorder`` parameter itself
    or is a method of a class whose ``__init__`` takes one (instances
    carry ``self.recorder``).
    """

    id = "R007"
    title = "recorder-aware component built without threading the recorder"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if "core" not in module.relpath.parts:
            return
        aware = _aware_callables()
        if not aware:  # pragma: no cover - discovery import failed
            return
        yield from self._scan(module, module.tree, aware, in_scope=False)

    def _scan(
        self,
        module: ParsedModule,
        node: ast.AST,
        aware: frozenset[str],
        in_scope: bool,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._scan(
                    module, child, aware,
                    in_scope or self._aware_class(child),
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    module, child, aware,
                    in_scope or _has_recorder_param(child),
                )
            else:
                if in_scope and isinstance(child, ast.Call):
                    yield from self._check_call(module, child, aware)
                yield from self._scan(module, child, aware, in_scope)

    def _aware_class(self, node: ast.ClassDef) -> bool:
        for child in node.body:
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "__init__"
            ):
                return _has_recorder_param(child)
        return False

    def _check_call(
        self, module: ParsedModule, call: ast.Call, aware: frozenset[str]
    ) -> Iterator[Finding]:
        qualified = module.imports.qualify(call.func)
        if qualified not in aware or _passes_recorder(call):
            return
        name = qualified.rsplit(".", 1)[-1]
        yield self.finding(
            module,
            call.lineno,
            call.col_offset,
            f"`{name}(...)` takes a recorder and one is in scope; pass "
            "`recorder=...` or the trace tree is silently severed",
        )
