"""R008 no-snapshot-in-loop: don't pickle repository objects per window.

The sharded fleet executor's wire discipline is delta-only: the shared
repository snapshot crosses to each worker exactly once, at session
setup, and every subsequent window broadcasts only wire-encoded deltas.
A ``pickle.dumps`` of a repository-like object inside a loop is the
signature of the anti-pattern that discipline replaced — re-serialising
the whole shared state every iteration, which makes per-window bytes
(and time) scale with run length instead of with what changed.

The rule fires on ``pickle.dumps(...)`` calls lexically inside any
``for``/``while`` loop whose argument expression mentions a name or
attribute containing ``repository`` (``snapshot`` of one included).
One-off snapshots at session setup are loop-free and stay legal.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["NoSnapshotInLoopRule"]


def _mentions_repository(node: ast.expr) -> str | None:
    """The first repository-like identifier inside *node*, if any."""
    for sub in ast.walk(node):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "repository" in name.lower():
            return name
    return None


def _is_pickle_dumps(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "dumps"
        and isinstance(func.value, ast.Name)
        and func.value.id == "pickle"
    )


@register
class NoSnapshotInLoopRule(Rule):
    """R008: repository snapshots must not be pickled inside loops."""

    id = "R008"
    title = "repository object pickled inside a loop"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        seen: set[int] = set()  # a call nested in two loops fires once
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or not _is_pickle_dumps(node):
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                for arg in node.args:
                    name = _mentions_repository(arg)
                    if name is None:
                        continue
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"pickle.dumps of `{name}` inside a loop "
                        "re-broadcasts the whole snapshot every iteration; "
                        "ship wire-encoded deltas and snapshot once at "
                        "session setup (delta-only executor discipline)",
                    )
                    break
