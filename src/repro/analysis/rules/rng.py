"""RNG determinism rules: R001 no-global-rng, R003 rng-must-thread.

The reproduction's seeded benches are byte-identical only because every
random draw flows from an explicitly threaded ``numpy.random.Generator``
(see ``repro/common/rng.py``). R001 bans the two ways code silently falls
back to shared global state — the stdlib ``random`` module-level
functions and ``numpy.random``'s legacy global stream — and, inside
library code, bans constructing generators anywhere but through
``make_rng``/``derive_rng``. R003 catches generators constructed without
an explicit seed, which are OS-entropy-seeded and therefore
irreproducible.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import ParsedModule, is_library_module, is_rng_module
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["NoGlobalRngRule", "RngMustThreadRule"]

#: stdlib ``random`` attributes that are *not* the shared global stream.
_STDLIB_RANDOM_OK = {"Random", "SystemRandom"}

#: ``numpy.random`` functions that draw from / mutate the legacy global
#: RandomState. Constructors and types (``default_rng``, ``Generator``,
#: ``SeedSequence``, ``RandomState``) are deliberately absent — they are
#: R003's concern.
_NUMPY_GLOBAL_FNS = {
    "seed", "get_state", "set_state",
    "random", "random_sample", "ranf", "sample", "rand", "randn", "randint",
    "random_integers", "bytes", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "lognormal", "exponential",
    "poisson", "binomial", "beta", "gamma", "triangular", "laplace",
    "logistic", "pareto", "power", "rayleigh", "wald", "weibull", "zipf",
    "geometric", "gumbel", "hypergeometric", "multinomial",
    "multivariate_normal", "negative_binomial", "chisquare", "dirichlet",
    "f", "vonmises", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_t",
}

#: Generator constructors R003 demands an explicit seed for. Maps the
#: qualified callable to the human name used in messages.
_CONSTRUCTORS = {
    "random.Random": "random.Random",
    "numpy.random.default_rng": "numpy.random.default_rng",
    "numpy.random.RandomState": "numpy.random.RandomState",
    "repro.common.rng.make_rng": "make_rng",
    "repro.common.make_rng": "make_rng",
}


@register
class NoGlobalRngRule(Rule):
    """R001: never draw from module-level RNG state.

    Flags calls to stdlib ``random.*`` functions and to ``numpy.random``'s
    legacy global-stream functions anywhere, and — inside the ``repro``
    package, where generator provenance must stay auditable — direct
    ``numpy.random.default_rng`` / ``RandomState`` construction outside
    ``common/rng.py`` (use ``make_rng``/``derive_rng`` instead).
    """

    id = "R001"
    title = "no module-level RNG state; thread a seeded Generator"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if is_rng_module(module.relpath):
            return
        library = is_library_module(module.relpath)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.imports.qualify(node.func)
            if qualified is None:
                continue
            message = self._violation(qualified, library)
            if message is not None:
                yield self.finding(
                    module, node.lineno, node.col_offset, message
                )

    def _violation(self, qualified: str, library: bool) -> str | None:
        if qualified.startswith("random."):
            attr = qualified.removeprefix("random.")
            if "." not in attr and attr not in _STDLIB_RANDOM_OK:
                return (
                    f"call to global-stream `random.{attr}`; draw from a "
                    "threaded numpy Generator instead"
                )
        if qualified.startswith("numpy.random."):
            attr = qualified.removeprefix("numpy.random.")
            if attr in _NUMPY_GLOBAL_FNS:
                return (
                    f"call to legacy global-stream `numpy.random.{attr}`; "
                    "draw from a threaded Generator instead"
                )
            if library and attr in {"default_rng", "RandomState"}:
                return (
                    f"library code constructs `numpy.random.{attr}` "
                    "directly; route through repro.common.rng.make_rng / "
                    "derive_rng so generator provenance stays auditable"
                )
        return None


@register
class RngMustThreadRule(Rule):
    """R003: generator construction must pass an explicit seed.

    ``random.Random()`` / ``numpy.random.default_rng()`` / ``make_rng()``
    with no argument seed from OS entropy, so two runs of the same bench
    diverge. The seed may be any expression (an int, a parent generator,
    a derived label) — it just has to be *stated*.
    """

    id = "R003"
    title = "RNG constructed without an explicit seed"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.imports.qualify(node.func)
            if qualified not in _CONSTRUCTORS:
                continue
            if node.args or any(
                kw.arg in ("seed", "x", None) for kw in node.keywords
            ):
                continue
            name = _CONSTRUCTORS[qualified]
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"`{name}()` without an explicit seed is irreproducible; "
                "pass a seed or a parent Generator",
            )
