"""R004 cache-version-bump: mutating versioned state must bump ``_version``.

PR 1 introduced version-keyed caches: ``WorkloadRepository`` (and any
future class following the pattern) exposes a monotonic ``_version``
counter, and consumers key derived state on it. The invariant is that
*every* public mutator of the tracked state bumps the counter — a mutator
that forgets leaves consumers serving stale derived state forever, a bug
no test catches until cache contents drift.

The rule fires on classes that assign ``self._version`` in ``__init__``
(or declare it at class level). Within such a class, a **public** method
that mutates tracked state must either touch ``self._version`` itself or
call a same-class method that does (one level of indirection, which
covers the ``add -> _append`` helper pattern).

Tracked state: underscore-prefixed attributes assigned in ``__init__``,
excluding ``_version`` itself and anything with ``cache`` in the name —
caches are *derived* from versioned state and are exactly what must not
force a bump when refreshed. Private methods (leading underscore) are
exempt: they are implementation details whose public callers carry the
bump obligation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["CacheVersionBumpRule"]

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "appendleft", "insert", "extend", "add", "update", "pop",
    "popitem", "popleft", "remove", "discard", "clear", "setdefault",
    "sort", "reverse",
}


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when *node* is ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_attrs(target: ast.expr) -> Iterator[str]:
    """Attribute names a (possibly nested) assignment target touches.

    Covers ``self.X = ...``, ``self.X[k] = ...`` and tuple unpacking;
    anything deeper resolves through :func:`_self_attr` on the base.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_attrs(element)
        return
    if isinstance(target, ast.Subscript):
        target = target.value
    attr = _self_attr(target)
    if attr is not None:
        yield attr


def _tracked_attrs(cls: ast.ClassDef) -> set[str]:
    """Underscore attributes set in ``__init__``, minus caches/version."""
    tracked: set[str] = set()
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef) or method.name != "__init__":
            continue
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                for attr in _assigned_attrs(target):
                    if (
                        attr.startswith("_")
                        and attr != "_version"
                        and "cache" not in attr
                    ):
                        tracked.add(attr)
    return tracked


def _has_version(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            if any("_version" in set(_assigned_attrs(t)) for t in node.targets):
                return True
        elif isinstance(node, ast.AnnAssign):
            if "_version" in set(_assigned_attrs(node.target)):
                return True
    return False


def _bumps_version(method: ast.FunctionDef) -> bool:
    """Whether *method* assigns or augments ``self._version`` itself."""
    for node in ast.walk(method):
        if isinstance(node, ast.AugAssign):
            if _self_attr(node.target) == "_version":
                return True
        elif isinstance(node, ast.Assign):
            if any(_self_attr(t) == "_version" for t in node.targets):
                return True
    return False


def _mutates_tracked(method: ast.FunctionDef, tracked: set[str]) -> int | None:
    """Line of the first tracked-state mutation in *method*, else None."""
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for attr in _assigned_attrs(target):
                    if attr in tracked:
                        return node.lineno
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                base = func.value
                if isinstance(base, ast.Subscript):  # self._x[k].append(...)
                    base = base.value
                if _self_attr(base) in tracked:
                    return node.lineno
    return None


def _called_methods(method: ast.FunctionDef) -> set[str]:
    """Names of same-instance methods invoked as ``self.m(...)``."""
    called: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            attr = _self_attr(node.func)
            if attr is not None:
                called.add(attr)
    return called


@register
class CacheVersionBumpRule(Rule):
    """R004: public mutators of ``_version``-tagged classes must bump it."""

    id = "R004"
    title = "tracked-state mutation without a _version bump"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or not _has_version(cls):
                continue
            tracked = _tracked_attrs(cls)
            if not tracked:
                continue
            methods = {
                node.name: node
                for node in cls.body
                if isinstance(node, ast.FunctionDef)
            }
            bumpers = {name for name, m in methods.items() if _bumps_version(m)}
            for name, method in methods.items():
                if name.startswith("_"):
                    continue  # private helpers: callers own the bump
                mutation_line = _mutates_tracked(method, tracked)
                if mutation_line is None:
                    continue
                if name in bumpers or _called_methods(method) & bumpers:
                    continue
                yield self.finding(
                    module,
                    mutation_line,
                    method.col_offset,
                    f"`{cls.name}.{name}` mutates tracked state "
                    f"({', '.join(sorted(tracked))} are version-tracked) "
                    "without bumping self._version; stale caches will be "
                    "served forever",
                )
