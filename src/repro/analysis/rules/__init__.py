"""Builtin lint rules. Importing this package registers R001–R012."""

from repro.analysis.rules.cache_version import CacheVersionBumpRule
from repro.analysis.rules.interprocedural import (
    FloatAccumulationOrderRule,
    RngCrossesShardRule,
    ShardStateMutationRule,
    UnorderedReduceRule,
)
from repro.analysis.rules.knob_registry import KnobRegistryRule
from repro.analysis.rules.observability import RecorderMustThreadRule
from repro.analysis.rules.rng import NoGlobalRngRule, RngMustThreadRule
from repro.analysis.rules.robustness import BoundedControlPlaneRule
from repro.analysis.rules.serialization import NoSnapshotInLoopRule
from repro.analysis.rules.wallclock import NoWallclockInSimRule

__all__ = [
    "BoundedControlPlaneRule",
    "CacheVersionBumpRule",
    "FloatAccumulationOrderRule",
    "KnobRegistryRule",
    "NoGlobalRngRule",
    "NoSnapshotInLoopRule",
    "NoWallclockInSimRule",
    "RecorderMustThreadRule",
    "RngCrossesShardRule",
    "RngMustThreadRule",
    "ShardStateMutationRule",
    "UnorderedReduceRule",
]
