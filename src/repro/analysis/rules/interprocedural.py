"""Interprocedural determinism rules: R009–R012 (``--deep`` only).

These rules read the whole-program :class:`ProjectContext` — the symbol
index, the taint dataflow facts/summaries and the approximate call graph
— to catch the shard-divergence bugs the per-file rules cannot see:

* **R009 shard-state-mutation** — code that runs inside a shard/worker
  process (reachable from a ``fleet_session`` factory or executor
  ``map`` function) mutating coordinator-owned state: the spec object
  handed across the pipe, anything stored from it, or a module global.
  Serial runs see the mutation; parallel runs lose or diverge on it.
* **R010 unordered-iteration-feeding-reduce** — set/dict iteration
  order reaching a canonical-order merge sink
  (``merge_member_outputs`` / ``MetricsRegistry.merge`` /
  ``TraceRecorder.absorb``) without an explicit ``sorted(...)``.
* **R011 float-accumulation-order** — bare ``sum()`` / ``+=`` over
  values that arrive in worker-completion order (``as_completed``,
  ``imap_unordered``, ``multiprocessing.connection.wait``): float
  addition is not associative, so the total differs run to run.
* **R012 rng-crosses-shard-unsubstreamed** — a live RNG generator
  crossing a shard boundary (``FleetSpec`` construction,
  ``fleet_session``, executor ``map``). Generators must cross as integer
  ``stream_root`` values and be re-derived per member via ``substream``;
  a pickled generator replays the *same* stream in every shard and
  breaks the worker-count parity invariant.

Each rule reports both **direct** evidence (a tagged value reaching a
sink inside the linted function) and **summary** evidence (the linted
function passing its own data into a callee whose summary says that
parameter reaches a sink/boundary/accumulation), so the finding lands at
the call site in the linted file even when the sink lives in a helper.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    CallEvent,
    FunctionFacts,
    FunctionSummary,
    Root,
    Tag,
)
from repro.analysis.engine import ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.registry import DeepRule, register

__all__ = [
    "ShardStateMutationRule",
    "UnorderedReduceRule",
    "FloatAccumulationOrderRule",
    "RngCrossesShardRule",
]

_ORDER_TAGS = frozenset({Tag.UNORDERED, Tag.SHARD_RAW})


def _module_facts(
    module: ParsedModule, project: ProjectContext
) -> Iterator[FunctionFacts]:
    """Facts for functions defined in *module*."""
    yield from project.analysis.facts_for_module(str(module.relpath))


def _callee_summary(
    project: ProjectContext, call: CallEvent
) -> tuple[FunctionSummary, int, str] | None:
    """(summary, param offset, display name) for a resolved call."""
    if call.callee is None:
        return None
    index = project.index
    if call.is_constructor:
        cls = index.classes.get(call.callee)
        init = cls.init_qname if cls else None
        if init is None:
            return None
        summary = project.analysis.summaries.get(init)
        return None if summary is None else (summary, 1, call.callee)
    summary = project.analysis.summaries.get(call.callee)
    if summary is None:
        return None
    info = index.functions.get(call.callee)
    offset = 1 if info is not None and info.is_method else 0
    return (summary, offset, call.callee)


def _call_args(
    call: CallEvent,
) -> Iterator[tuple[int, frozenset[Root], frozenset[Tag]]]:
    """(positional index, roots, tags) for each positional argument."""
    for pos, (roots, tags) in enumerate(zip(call.arg_roots, call.arg_tags)):
        yield pos, roots, tags


@dataclass
class _ShardTaint:
    """Coordinator-owned state, traced from shard entry points.

    ``params[qname]`` — parameter indices of *qname* bound to
    coordinator-owned objects when it runs inside a shard (the spec a
    ``fleet_session`` factory receives, the item an executor ``map``
    function receives, and everything those are passed on to).
    ``attrs[class_qname]`` — attributes assigned from such a value
    (``self.spec = spec`` in a worker ``__init__``).
    """

    params: dict[str, set[int]] = field(default_factory=dict)
    attrs: dict[str, set[str]] = field(default_factory=dict)
    reachable: frozenset[str] = frozenset()

    def tainted_roots(self, qname: str, facts: FunctionFacts) -> set[Root]:
        out: set[Root] = set()
        for i in self.params.get(qname, ()):
            out.add(Root("param", i))
        cls = facts.info.class_qname
        if cls is not None:
            for attr in self.attrs.get(cls, ()):
                out.add(Root("self", attr))
        return out


def _build_shard_taint(project: ProjectContext) -> _ShardTaint:
    """Fixpoint: propagate coordinator-ownership from shard entries."""
    taint = _ShardTaint(reachable=project.graph.shard_reachable())
    index = project.index
    for _owner, entry in project.graph.shard_entry_events():
        if entry.factory in index.functions:
            taint.params.setdefault(entry.factory, set()).add(0)
        elif entry.factory in index.classes:
            init = index.classes[entry.factory].init_qname
            if init is not None:  # constructor arg 0 is __init__ param 1
                taint.params.setdefault(init, set()).add(1)
    for _ in range(len(index.functions) + 1):
        if not _taint_pass(project, taint):
            break
    return taint


def _taint_pass(project: ProjectContext, taint: _ShardTaint) -> bool:
    changed = False
    analysis = project.analysis
    index = project.index
    for qname in taint.reachable:
        facts = analysis.facts.get(qname)
        if facts is None:
            continue
        tainted = taint.tainted_roots(qname, facts)
        if not tainted:
            continue
        # Values stored onto self from a tainted source taint the attr.
        cls = facts.info.class_qname
        if cls is not None:
            for attr, roots in facts.self_attr_roots.items():
                if roots & tainted:
                    attrs = taint.attrs.setdefault(cls, set())
                    if attr not in attrs:
                        attrs.add(attr)
                        changed = True
        # Passing a tainted value into a project callee taints the
        # receiving parameter (constructor arg 0 -> __init__ param 1).
        for call in facts.calls:
            if call.callee is None:
                continue
            if call.is_constructor:
                cls_info = index.classes.get(call.callee)
                init = cls_info.init_qname if cls_info else None
                if init is None:
                    continue
                target, offset = init, 1
            else:
                if call.callee not in index.functions:
                    continue
                info = index.functions[call.callee]
                target, offset = call.callee, 1 if info.is_method else 0
            callee_info = index.functions.get(target)
            for pos, roots, _tags in _call_args(call):
                if not (set(roots) & tainted):
                    continue
                params = taint.params.setdefault(target, set())
                if pos + offset not in params:
                    params.add(pos + offset)
                    changed = True
            for kw_name, kw_roots in zip(call.kw_names, call.kw_roots):
                if kw_name is None or not (set(kw_roots) & tainted):
                    continue
                if callee_info is None:
                    continue
                kw_index = callee_info.param_index(kw_name)
                if kw_index is None:
                    continue
                params = taint.params.setdefault(target, set())
                if kw_index not in params:
                    params.add(kw_index)
                    changed = True
    return changed


class _ProjectCache:
    """Per-rule-instance cache of derived project state (one lint run)."""

    def __init__(self) -> None:
        self._key: int | None = None
        self._taint: _ShardTaint | None = None

    def shard_taint(self, project: ProjectContext) -> _ShardTaint:
        if self._key != id(project) or self._taint is None:
            self._taint = _build_shard_taint(project)
            self._key = id(project)
        return self._taint


@register
class ShardStateMutationRule(DeepRule):
    """R009: never mutate coordinator-owned state inside a shard.

    A shard worker receives the coordinator's spec (and whatever the
    factory stores from it) by pickling — one copy per worker process.
    Mutating that copy, or rebinding a module global, takes effect in
    *that worker only*: a serial run sees the mutation, a 4-worker run
    sees a quarter of it, and parity breaks. Workers must treat received
    state as read-only and report results through their return values
    (the sanctioned pattern snapshots first:
    ``pickle.loads(pickle.dumps(spec.repository))``).
    """

    id = "R009"
    title = "no mutation of coordinator-owned state in shard code"

    def __init__(self) -> None:
        self._cache = _ProjectCache()

    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        taint = self._cache.shard_taint(project)
        for facts in _module_facts(module, project):
            qname = facts.info.qname
            if qname not in taint.reachable:
                continue
            tainted = taint.tainted_roots(qname, facts)
            params = facts.info.params
            for mutation in facts.mutations:
                flagged = [
                    root
                    for root in mutation.roots
                    if root.kind == "global" or root in tainted
                ]
                if not flagged:
                    continue
                origin = ", ".join(
                    sorted(root.describe(params) for root in flagged)
                )
                yield self.finding(
                    module,
                    mutation.line,
                    mutation.col,
                    f"`{facts.info.name}` runs in shard workers (reached "
                    f"from a fleet entry point) but {mutation.desc}, "
                    f"mutating coordinator-owned state ({origin}); each "
                    "worker mutates its own pickled copy, so serial and "
                    "parallel runs diverge — snapshot first or return the "
                    "change through the shard output",
                )


@register
class UnorderedReduceRule(DeepRule):
    """R010: sort before feeding a canonical-order merge.

    ``merge_member_outputs``, ``MetricsRegistry.merge`` and
    ``TraceRecorder.absorb`` define the canonical event order of a run;
    feeding them values drawn from set/dict iteration (or straight from
    worker-completion order) makes that order an accident of hashing or
    scheduling. Iterate ``sorted(...)`` instead.
    """

    id = "R010"
    title = "no unordered iteration feeding a canonical-order merge"

    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for facts in _module_facts(module, project):
            for sink in facts.sinks:
                tags = sink.tags & _ORDER_TAGS
                if tags and (sink.line, sink.col) not in seen:
                    seen.add((sink.line, sink.col))
                    yield self.finding(
                        module,
                        sink.line,
                        sink.col,
                        f"{sink.desc} carries {_order_desc(tags)}; the "
                        "merge order becomes nondeterministic — iterate "
                        "`sorted(...)` before merging",
                    )
            for call in facts.calls:
                resolved = _callee_summary(project, call)
                if resolved is None:
                    continue
                summary, offset, name = resolved
                if not summary.merge_params:
                    continue
                for pos, _roots, tags in _call_args(call):
                    order = tags & _ORDER_TAGS
                    if (
                        pos + offset in summary.merge_params
                        and order
                        and (call.line, call.col) not in seen
                    ):
                        seen.add((call.line, call.col))
                        yield self.finding(
                            module,
                            call.line,
                            call.col,
                            f"argument {pos} of `{call.desc}` reaches a "
                            f"canonical-order merge inside `{name}` but "
                            f"carries {_order_desc(order)} — iterate "
                            "`sorted(...)` before merging",
                        )


@register
class FloatAccumulationOrderRule(DeepRule):
    """R011: no bare float accumulation over worker-ordered values.

    Float addition is not associative: ``sum()`` or ``+=`` over results
    arriving in worker-completion order (``as_completed``,
    ``imap_unordered``, ``connection.wait``) produces a different total
    on every run. Collect results, order them by a stable key, then
    reduce — or use ``math.fsum`` where only the total matters.
    """

    id = "R011"
    title = "no order-sensitive accumulation over worker-order values"

    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for facts in _module_facts(module, project):
            for accum in facts.accums:
                if (accum.line, accum.col) in seen:
                    continue
                seen.add((accum.line, accum.col))
                yield self.finding(
                    module,
                    accum.line,
                    accum.col,
                    f"{accum.desc}: float addition is not associative, so "
                    "the result depends on worker scheduling — sort "
                    "results by a stable key before reducing (or use "
                    "`math.fsum`)",
                )
            for call in facts.calls:
                resolved = _callee_summary(project, call)
                if resolved is None:
                    continue
                summary, offset, name = resolved
                if not summary.accum_params:
                    continue
                for pos, _roots, tags in _call_args(call):
                    if (
                        pos + offset in summary.accum_params
                        and Tag.SHARD_RAW in tags
                        and (call.line, call.col) not in seen
                    ):
                        seen.add((call.line, call.col))
                        yield self.finding(
                            module,
                            call.line,
                            call.col,
                            f"argument {pos} of `{call.desc}` is accumulated "
                            f"inside `{name}` but arrives in worker-"
                            "completion order — sort results by a stable "
                            "key before reducing",
                        )


@register
class RngCrossesShardRule(DeepRule):
    """R012: RNGs cross shard boundaries as roots, not generators.

    The parity invariant requires every shard to derive its members'
    streams from spawn keys: an integer ``stream_root`` crosses the
    pickle boundary and each member calls ``substream(root, "member",
    i)``. Passing a live generator into a ``FleetSpec`` or executor call
    replays the same stream in every worker and couples draw order to
    sharding.
    """

    id = "R012"
    title = "RNG must cross shard boundaries via stream_root/substream"

    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for facts in _module_facts(module, project):
            for boundary in facts.boundaries:
                if Tag.RNG in boundary.tags and (
                    boundary.line,
                    boundary.col,
                ) not in seen:
                    seen.add((boundary.line, boundary.col))
                    yield self.finding(
                        module,
                        boundary.line,
                        boundary.col,
                        f"`{boundary.arg}` passed into `{boundary.boundary}` "
                        "carries a live RNG generator; cross the shard "
                        "boundary with an integer `stream_root(seed)` and "
                        "re-derive per member via `substream(root, ...)`",
                    )
            for call in facts.calls:
                resolved = _callee_summary(project, call)
                if resolved is None:
                    continue
                summary, offset, name = resolved
                if not summary.boundary_params:
                    continue
                for pos, _roots, tags in _call_args(call):
                    if (
                        pos + offset in summary.boundary_params
                        and Tag.RNG in tags
                        and (call.line, call.col) not in seen
                    ):
                        seen.add((call.line, call.col))
                        yield self.finding(
                            module,
                            call.line,
                            call.col,
                            f"argument {pos} of `{call.desc}` crosses a "
                            f"shard boundary inside `{name}` but carries a "
                            "live RNG generator — pass `stream_root(seed)` "
                            "and `substream` per member instead",
                        )


def _order_desc(tags: frozenset[Tag]) -> str:
    if Tag.SHARD_RAW in tags:
        return "worker-completion order"
    return "set/dict iteration order"
