"""Rule base class and registry for ``repro lint``.

A rule is a small class with an ``id`` (``R001``-style), a one-line
``title``, a default :class:`~repro.analysis.findings.Severity` and a
``check`` method that yields findings for one parsed module. Rules
register themselves with the :func:`register` decorator; the engine
instantiates every registered rule once per lint run (rules may hold
per-run caches, e.g. the knob registry).
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # circular at runtime only: engine imports the registry
    from repro.analysis.engine import ParsedModule
    from repro.analysis.project import ProjectContext

__all__ = ["Rule", "DeepRule", "register", "all_rules", "get_rule"]


class Rule(abc.ABC):
    """One invariant check, run against every linted module."""

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    #: Deep rules need the whole-program :class:`ProjectContext`; the
    #: engine builds it once per run and dispatches via ``check_deep``.
    requires_project: bool = False

    @abc.abstractmethod
    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield findings for *module*."""

    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        """Yield whole-program findings for *module* (deep rules only)."""
        return iter(())

    def finding(
        self, module: ParsedModule, line: int, col: int, message: str
    ) -> Finding:
        """Convenience constructor pinning rule id/severity."""
        return Finding(self.id, self.severity, module.relpath, line, col, message)


class DeepRule(Rule):
    """Base for interprocedural rules: only ``check_deep`` fires."""

    requires_project = True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        return iter(())

    @abc.abstractmethod
    def check_deep(
        self, module: ParsedModule, project: ProjectContext
    ) -> Iterator[Finding]:
        """Yield whole-program findings for *module*."""


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: add *rule_cls* to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Registered rule classes, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> type[Rule]:
    """One registered rule class by id (KeyError with the known set)."""
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def _load_builtin_rules() -> None:
    """Import the builtin rule modules so their ``register`` calls run."""
    from repro.analysis import rules  # noqa: F401  (import side effect)
