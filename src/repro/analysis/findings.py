"""Finding model for the ``repro lint`` static checker.

A :class:`Finding` is one rule violation pinned to a file and line. The
model is deliberately flat — reporters (text, JSON) and the CLI exit-code
logic consume it without needing the AST context it was derived from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import PurePosixPath

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are printed
    but do not affect the exit code (none of the shipped rules currently
    emit warnings — the tier exists so a new rule can be introduced
    observe-only before being promoted to blocking).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at ``path:line:col``.

    ``path`` is stored POSIX-style relative to the lint root so output is
    stable across machines and usable in CI annotations.
    """

    rule: str
    severity: Severity
    path: PurePosixPath
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line textual form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def sort_key(self) -> tuple[str, int, int, str]:
        return (str(self.path), self.line, self.col, self.rule)
