"""Query templating, after Ma et al. (SIGMOD 2018).

The TDE cannot afford to examine every query on a production system, so it
first reduces the stream to *templates*: the query text with all literal
parameters replaced by placeholders. Queries sharing a template share a
template id, which shrinks the population that reservoir sampling (see
:mod:`repro.workloads.sampling`) then draws from.

The paper additionally substitutes the *most frequent* concrete parameters
back into a selected template before running EXPLAIN on it;
:class:`TemplateCatalog` keeps per-template parameter frequency counts to
support that.
"""

from __future__ import annotations

import hashlib
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.workloads.query import Query

__all__ = ["make_template", "template_id", "TemplateCatalog", "TemplateStats"]

_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
# Numbers as standalone literals AND numeric suffixes of identifiers
# (tmp_sales_482 and tmp_sales_91 must share a template): `_` is a word
# character, so a plain \b would leave identifier suffixes untouched and
# generated names would each mint a fresh template.
_NUMBER_LITERAL = re.compile(r"(?:\b|(?<=_))\d+(?:\.\d+)?\b")
_WHITESPACE = re.compile(r"\s+")


def make_template(sql: str) -> str:
    """Strip literal parameters from *sql*, returning the template text.

    String literals are replaced first (so numbers inside strings are not
    double-substituted), then bare numeric literals; whitespace is
    normalised and keywords upper-cased are left as written (the generators
    emit consistent casing).
    """
    text = _STRING_LITERAL.sub("?", sql)
    text = _NUMBER_LITERAL.sub("?", text)
    return _WHITESPACE.sub(" ", text).strip()


def template_id(template: str) -> str:
    """Stable short identifier for a template string."""
    return hashlib.sha1(template.encode("utf-8")).hexdigest()[:12]


@dataclass
class TemplateStats:
    """Frequency bookkeeping for one template."""

    template: str
    count: int = 0
    param_counts: Counter = field(default_factory=Counter)
    example: Query | None = None

    def most_frequent_params(self) -> tuple[str, ...]:
        """Concrete parameters seen most often (for EXPLAIN substitution)."""
        if not self.param_counts:
            return ()
        (params, _count), = self.param_counts.most_common(1)
        return params


class TemplateCatalog:
    """Streaming template extractor with per-template frequencies.

    Feed it the raw query stream with :meth:`observe`; read back the known
    templates, their counts and a representative query per template.
    """

    def __init__(self) -> None:
        self._stats: dict[str, TemplateStats] = {}
        self._total = 0

    def observe(self, query: Query) -> str:
        """Record *query*, returning its template id."""
        template = make_template(query.text)
        tid = template_id(template)
        stats = self._stats.get(tid)
        if stats is None:
            stats = TemplateStats(template=template)
            self._stats[tid] = stats
        stats.count += 1
        stats.param_counts[self._extract_params(query.text)] += 1
        stats.example = query
        self._total += 1
        return tid

    @staticmethod
    def _extract_params(sql: str) -> tuple[str, ...]:
        """Literals of *sql*, in order (strings first pass, then numbers)."""
        strings = _STRING_LITERAL.findall(sql)
        without_strings = _STRING_LITERAL.sub("?", sql)
        numbers = _NUMBER_LITERAL.findall(without_strings)
        return tuple(strings + numbers)

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def total_observed(self) -> int:
        """Total queries observed (not distinct templates)."""
        return self._total

    def stats(self, tid: str) -> TemplateStats:
        """Stats for template id *tid* (KeyError if unknown)."""
        return self._stats[tid]

    def templates(self) -> dict[str, TemplateStats]:
        """Mapping of template id to stats, insertion-ordered."""
        return dict(self._stats)

    def top_templates(self, n: int) -> list[TemplateStats]:
        """The *n* most frequent templates."""
        return sorted(self._stats.values(), key=lambda s: -s.count)[:n]
