"""Query templating, after Ma et al. (SIGMOD 2018).

The TDE cannot afford to examine every query on a production system, so it
first reduces the stream to *templates*: the query text with all literal
parameters replaced by placeholders. Queries sharing a template share a
template id, which shrinks the population that reservoir sampling (see
:mod:`repro.workloads.sampling`) then draws from.

The paper additionally substitutes the *most frequent* concrete parameters
back into a selected template before running EXPLAIN on it;
:class:`TemplateCatalog` keeps per-template parameter frequency counts to
support that.
"""

from __future__ import annotations

import hashlib
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.workloads.query import Query

__all__ = [
    "make_template",
    "template_id",
    "family_template_info",
    "FamilyTemplateInfo",
    "TemplateCatalog",
    "TemplateStats",
]

_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
# Numbers as standalone literals AND numeric suffixes of identifiers
# (tmp_sales_482 and tmp_sales_91 must share a template): `_` is a word
# character, so a plain \b would leave identifier suffixes untouched and
# generated names would each mint a fresh template.
_NUMBER_LITERAL = re.compile(r"(?:\b|(?<=_))\d+(?:\.\d+)?\b")
_WHITESPACE = re.compile(r"\s+")


def make_template(sql: str) -> str:
    """Strip literal parameters from *sql*, returning the template text.

    String literals are replaced first (so numbers inside strings are not
    double-substituted), then bare numeric literals; whitespace is
    normalised and keywords upper-cased are left as written (the generators
    emit consistent casing).
    """
    text = _STRING_LITERAL.sub("?", sql)
    text = _NUMBER_LITERAL.sub("?", text)
    return _WHITESPACE.sub(" ", text).strip()


def template_id(template: str) -> str:
    """Stable short identifier for a template string."""
    return hashlib.sha1(template.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class FamilyTemplateInfo:
    """Precomputed templating result for one query family.

    ``template`` is the normalised template every instantiation of the
    family produces; ``slots`` describes the literal-extraction output:
    a ``str`` entry is a literal baked into the family's template text, an
    ``int`` entry is an index into the family's rendered parameters.
    """

    template: str
    slots: tuple[str | int, ...]


def _extract_literals(sql: str) -> tuple[str, tuple[str, ...]]:
    """One fused pass: the template of *sql* plus its literals in order."""
    params: list[str] = []
    append = params.append

    def _collect(match: re.Match) -> str:
        append(match.group(0))
        return "?"

    stripped = _NUMBER_LITERAL.sub(_collect, _STRING_LITERAL.sub(_collect, sql))
    return _WHITESPACE.sub(" ", stripped).strip(), tuple(params)


def _sentinel(kind: str, index: int, salt: int) -> str | None:
    """A unique, improbable parameter rendering for *kind* (None: unknown)."""
    if kind == "int":
        return str(900_000_000 + salt * 1_000 + index)
    if kind == "str":
        return f"'zzsent{salt}x{index}'"
    if kind == "float":
        return f"{700_000_000 + salt * 1_000 + index}.5"
    return None


def family_template_info(
    template: str, param_spec: tuple[str, ...]
) -> FamilyTemplateInfo | None:
    """Templating info valid for *every* instantiation of a family.

    All drawn parameters normalise to ``?`` (ints and floats are bare
    numeric literals, strings are quoted), so a family's instantiations
    share one template; the literal-extraction output likewise always has
    the same shape — static template literals interleaved with the drawn
    parameters in a fixed order (strings first, then numbers).

    The mapping is derived by instantiating the family with two distinct
    sentinel parameter sets and diffing the extractions: slots whose text
    matches a sentinel map to that parameter index; slots identical across
    both instantiations are static literals. Any pathology that would make
    extraction depend on the drawn values — a parameter fusing with an
    adjacent literal, say — shows up as a cross-instantiation mismatch and
    returns ``None`` (callers then fall back to per-query templating).
    """

    def build(salt: int) -> tuple[str, tuple[str, ...], list[str]] | None:
        text = template
        rendered: list[str] = []
        for index, kind in enumerate(param_spec):
            sentinel = _sentinel(kind, index, salt)
            if sentinel is None:
                # Unknown kind: leave rejection to ``instantiate``.
                return None
            rendered.append(sentinel)
            text = text.replace("%s", sentinel, 1)
        extracted_template, literals = _extract_literals(text)
        return extracted_template, literals, rendered

    built_a = build(1)
    built_b = build(2)
    if built_a is None or built_b is None:
        return None
    template_a, literals_a, rendered_a = built_a
    template_b, literals_b, rendered_b = built_b
    if template_a != template_b or len(literals_a) != len(literals_b):
        return None
    slots: list[str | int] = []
    for lit_a, lit_b in zip(literals_a, literals_b):
        if lit_a in rendered_a:
            index = rendered_a.index(lit_a)
            if lit_b != rendered_b[index]:
                return None
            slots.append(index)
        elif lit_a == lit_b:
            slots.append(lit_a)
        else:
            return None
    if sorted(s for s in slots if isinstance(s, int)) != list(range(len(param_spec))):
        return None
    return FamilyTemplateInfo(template=template_a, slots=tuple(slots))


#: Per-template parameter-frequency bookkeeping is compacted to the
#: ``_PARAM_COUNTS_KEEP`` most frequent entries once it exceeds
#: ``_PARAM_COUNTS_CAP`` distinct parameter sets: randomly drawn
#: parameters are almost all distinct, so an unbounded counter grows by
#: one entry per observed query — hundreds of megabytes over a fleet-day —
#: while the frequent entries that EXPLAIN substitution wants survive
#: compaction by construction.
_PARAM_COUNTS_CAP = 1024
_PARAM_COUNTS_KEEP = 256


@dataclass
class TemplateStats:
    """Frequency bookkeeping for one template."""

    template: str
    count: int = 0
    param_counts: Counter = field(default_factory=Counter)
    example: Query | None = None

    def most_frequent_params(self) -> tuple[str, ...]:
        """Concrete parameters seen most often (for EXPLAIN substitution)."""
        if not self.param_counts:
            return ()
        (params, _count), = self.param_counts.most_common(1)
        return params


class TemplateCatalog:
    """Streaming template extractor with per-template frequencies.

    Feed it the raw query stream with :meth:`observe`; read back the known
    templates, their counts and a representative query per template.
    """

    def __init__(self) -> None:
        self._stats: dict[str, TemplateStats] = {}
        self._total = 0
        # template text -> id; templates repeat across the stream while
        # texts do not, so the sha1 is paid once per distinct template.
        self._tid_cache: dict[str, str] = {}

    def observe(self, query: Query) -> str:
        """Record *query*, returning its template id."""
        # Generator-instantiated queries carry their precomputed template
        # and extracted literals (see ``family_template_info``); anything
        # else goes through the fused single-pass extraction, which runs
        # the same substitutions ``make_template`` and ``_extract_params``
        # would each run, collected via the replacement callback. Strings
        # are collected first, then numbers, in both representations.
        template = query.template
        if template:
            params = query.params
        else:
            template, params = _extract_literals(query.text)
        tid = self._tid_cache.get(template)
        if tid is None:
            tid = template_id(template)
            self._tid_cache[template] = tid
        stats = self._stats.get(tid)
        if stats is None:
            stats = TemplateStats(template=template)
            self._stats[tid] = stats
        stats.count += 1
        stats.param_counts[params] += 1
        if len(stats.param_counts) > _PARAM_COUNTS_CAP:
            # ``most_common`` ties keep insertion order, so the retained
            # prefix is deterministic.
            stats.param_counts = Counter(
                dict(stats.param_counts.most_common(_PARAM_COUNTS_KEEP))
            )
        stats.example = query
        self._total += 1
        return tid

    @staticmethod
    def _extract_params(sql: str) -> tuple[str, ...]:
        """Literals of *sql*, in order (strings first pass, then numbers)."""
        strings = _STRING_LITERAL.findall(sql)
        without_strings = _STRING_LITERAL.sub("?", sql)
        numbers = _NUMBER_LITERAL.findall(without_strings)
        return tuple(strings + numbers)

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def total_observed(self) -> int:
        """Total queries observed (not distinct templates)."""
        return self._total

    def stats(self, tid: str) -> TemplateStats:
        """Stats for template id *tid* (KeyError if unknown)."""
        return self._stats[tid]

    def templates(self) -> dict[str, TemplateStats]:
        """Mapping of template id to stats, insertion-ordered."""
        return dict(self._stats)

    def top_templates(self, n: int) -> list[TemplateStats]:
        """The *n* most frequent templates."""
        return sorted(self._stats.values(), key=lambda s: -s.count)[:n]
