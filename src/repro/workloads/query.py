"""Query model shared by the workload generators, DB simulator and TDE.

A :class:`Query` is a typed, resource-annotated unit of work. The simulator
does not parse SQL; instead each query carries a :class:`QueryFootprint`
describing the resources its execution demands (working-area memory for
sorts/joins, maintenance memory for index builds, temp-table bytes, bytes
read and written, parallelisable fraction, planner sensitivity). These
footprints are what drive throttles: a sort whose ``sort_mb`` exceeds
``work_mem`` spills to disk exactly like PostgreSQL's executor would.

Footprint magnitudes for the standard benchmarks follow Fig. 2 of the
paper (e.g. TPC-C uses ~0.5 MB of working memory; the aggregation queries
added to the adulterated TPC-C need ~350 MB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["QueryType", "QueryFootprint", "QueryFamily", "Query"]


class QueryType(enum.Enum):
    """Broad statement type, used for read/write accounting and grouping."""

    SELECT = "select"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    JOIN = "join"
    AGGREGATE = "aggregate"
    ORDER_BY = "order_by"
    INDEX_CREATE = "index_create"
    INDEX_DROP = "index_drop"
    TEMP_TABLE = "temp_table"
    ALTER_TABLE = "alter_table"

    @property
    def is_write(self) -> bool:
        """Whether the statement dirties pages / produces WAL."""
        return self in _WRITE_TYPES

    @property
    def is_maintenance(self) -> bool:
        """DDL-style statements charged to maintenance working memory."""
        return self in _MAINTENANCE_TYPES


_WRITE_TYPES = frozenset(
    {
        QueryType.INSERT,
        QueryType.UPDATE,
        QueryType.DELETE,
        QueryType.INDEX_CREATE,
        QueryType.INDEX_DROP,
        QueryType.TEMP_TABLE,
        QueryType.ALTER_TABLE,
    }
)

_MAINTENANCE_TYPES = frozenset(
    {
        QueryType.INDEX_CREATE,
        QueryType.INDEX_DROP,
        QueryType.DELETE,
        QueryType.ALTER_TABLE,
    }
)


@dataclass(frozen=True)
class QueryFootprint:
    """Resource demand of one execution of a query.

    Attributes
    ----------
    rows_examined / rows_returned:
        Tuple traffic, feeds the pg_stat-style metrics.
    sort_mb:
        Working-area memory (MB) the executor needs for sorts, hash joins
        and aggregations. Compared against ``work_mem`` /
        ``sort_buffer_size``; the shortfall spills to disk.
    maintenance_mb:
        Memory (MB) needed by maintenance operations (index builds, bulk
        deletes). Compared against ``maintenance_work_mem`` /
        ``key_buffer_size``.
    temp_mb:
        Temporary-table bytes (MB). Compared against ``temp_buffers`` /
        ``tmp_table_size``.
    read_kb / write_kb:
        Logical data read and written (KB); reads may hit the buffer pool,
        writes dirty pages and produce WAL.
    parallel_fraction:
        Amdahl-style fraction of the work that parallel workers can share.
    planner_sensitivity:
        In [0, 1]; how strongly execution time reacts to planner-estimate
        knobs being away from their (latent) optimum.
    """

    rows_examined: int = 1
    rows_returned: int = 1
    sort_mb: float = 0.0
    maintenance_mb: float = 0.0
    temp_mb: float = 0.0
    read_kb: float = 4.0
    write_kb: float = 0.0
    parallel_fraction: float = 0.0
    planner_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "sort_mb",
            "maintenance_mb",
            "temp_mb",
            "read_kb",
            "write_kb",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if not 0.0 <= self.planner_sensitivity <= 1.0:
            raise ValueError("planner_sensitivity must be in [0, 1]")

    def jittered(self, rng: np.random.Generator, relative: float = 0.15) -> "QueryFootprint":
        """A copy with each positive resource scaled by ``1 ± relative``."""

        def scale(value: float) -> float:
            if value <= 0.0:
                return value
            return float(value * rng.uniform(1.0 - relative, 1.0 + relative))

        return replace(
            self,
            sort_mb=scale(self.sort_mb),
            maintenance_mb=scale(self.maintenance_mb),
            temp_mb=scale(self.temp_mb),
            read_kb=scale(self.read_kb),
            write_kb=scale(self.write_kb),
        )


@dataclass(frozen=True)
class QueryFamily:
    """A parameterised query template with a fixed resource profile.

    Generators emit queries by instantiating families; the DB simulator
    costs whole batches by ``count × footprint`` per family, which keeps
    10 000-requests-per-second experiments tractable.
    """

    name: str
    query_type: QueryType
    template: str
    weight: float
    footprint: QueryFootprint
    param_spec: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be >= 0")
        if not self.name:
            raise ValueError("family name must be non-empty")

    def instantiate(self, rng: np.random.Generator) -> "Query":
        """Materialise one query with concrete parameters and jitter."""
        params = tuple(self._draw_param(kind, rng) for kind in self.param_spec)
        text = self.template
        for value in params:
            text = text.replace("%s", str(value), 1)
        return Query(
            family=self.name,
            query_type=self.query_type,
            text=text,
            footprint=self.footprint.jittered(rng),
        )

    @staticmethod
    def _draw_param(kind: str, rng: np.random.Generator) -> object:
        if kind == "int":
            return int(rng.integers(1, 1_000_000))
        if kind == "str":
            return "'v{:06d}'".format(int(rng.integers(0, 999_999)))
        if kind == "float":
            return round(float(rng.uniform(0, 10_000)), 2)
        raise ValueError(f"unknown param kind {kind!r}")


@dataclass(frozen=True)
class Query:
    """One concrete query as it would appear in the streaming query log."""

    family: str
    query_type: QueryType
    text: str
    footprint: QueryFootprint

    @property
    def is_write(self) -> bool:
        return self.query_type.is_write
