"""Query model shared by the workload generators, DB simulator and TDE.

A :class:`Query` is a typed, resource-annotated unit of work. The simulator
does not parse SQL; instead each query carries a :class:`QueryFootprint`
describing the resources its execution demands (working-area memory for
sorts/joins, maintenance memory for index builds, temp-table bytes, bytes
read and written, parallelisable fraction, planner sensitivity). These
footprints are what drive throttles: a sort whose ``sort_mb`` exceeds
``work_mem`` spills to disk exactly like PostgreSQL's executor would.

Footprint magnitudes for the standard benchmarks follow Fig. 2 of the
paper (e.g. TPC-C uses ~0.5 MB of working memory; the aggregation queries
added to the adulterated TPC-C need ~350 MB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryType", "QueryFootprint", "QueryFamily", "Query"]

# The jitter band of ``QueryFootprint.jittered(relative=0.15)``, computed
# with the same expressions so the constants are bit-identical to what the
# method derives; ``QueryFamily.instantiate`` inlines the jitter.
_JITTER_LO = 1.0 - 0.15
_JITTER_SPAN = (1.0 + 0.15) - _JITTER_LO


class QueryType(enum.Enum):
    """Broad statement type, used for read/write accounting and grouping."""

    SELECT = "select"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    JOIN = "join"
    AGGREGATE = "aggregate"
    ORDER_BY = "order_by"
    INDEX_CREATE = "index_create"
    INDEX_DROP = "index_drop"
    TEMP_TABLE = "temp_table"
    ALTER_TABLE = "alter_table"

    @property
    def is_write(self) -> bool:
        """Whether the statement dirties pages / produces WAL."""
        return self in _WRITE_TYPES

    @property
    def is_maintenance(self) -> bool:
        """DDL-style statements charged to maintenance working memory."""
        return self in _MAINTENANCE_TYPES


_WRITE_TYPES = frozenset(
    {
        QueryType.INSERT,
        QueryType.UPDATE,
        QueryType.DELETE,
        QueryType.INDEX_CREATE,
        QueryType.INDEX_DROP,
        QueryType.TEMP_TABLE,
        QueryType.ALTER_TABLE,
    }
)

_MAINTENANCE_TYPES = frozenset(
    {
        QueryType.INDEX_CREATE,
        QueryType.INDEX_DROP,
        QueryType.DELETE,
        QueryType.ALTER_TABLE,
    }
)


@dataclass(frozen=True, slots=True)
class QueryFootprint:
    """Resource demand of one execution of a query.

    Attributes
    ----------
    rows_examined / rows_returned:
        Tuple traffic, feeds the pg_stat-style metrics.
    sort_mb:
        Working-area memory (MB) the executor needs for sorts, hash joins
        and aggregations. Compared against ``work_mem`` /
        ``sort_buffer_size``; the shortfall spills to disk.
    maintenance_mb:
        Memory (MB) needed by maintenance operations (index builds, bulk
        deletes). Compared against ``maintenance_work_mem`` /
        ``key_buffer_size``.
    temp_mb:
        Temporary-table bytes (MB). Compared against ``temp_buffers`` /
        ``tmp_table_size``.
    read_kb / write_kb:
        Logical data read and written (KB); reads may hit the buffer pool,
        writes dirty pages and produce WAL.
    parallel_fraction:
        Amdahl-style fraction of the work that parallel workers can share.
    planner_sensitivity:
        In [0, 1]; how strongly execution time reacts to planner-estimate
        knobs being away from their (latent) optimum.
    """

    rows_examined: int = 1
    rows_returned: int = 1
    sort_mb: float = 0.0
    maintenance_mb: float = 0.0
    temp_mb: float = 0.0
    read_kb: float = 4.0
    write_kb: float = 0.0
    parallel_fraction: float = 0.0
    planner_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "sort_mb",
            "maintenance_mb",
            "temp_mb",
            "read_kb",
            "write_kb",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if not 0.0 <= self.planner_sensitivity <= 1.0:
            raise ValueError("planner_sensitivity must be in [0, 1]")

    def jittered(self, rng: np.random.Generator, relative: float = 0.15) -> "QueryFootprint":
        """A copy with each positive resource scaled by ``1 ± relative``.

        Built without ``dataclasses.replace`` (which re-runs
        ``__post_init__``): this sits in the per-query generation hot
        path, and jittering already-validated non-negative values by a
        positive factor cannot violate the invariants. Uniform draws are
        made only for strictly positive fields, in declaration order, as
        one batched ``rng.random(size=k)`` — the Generator fills a batch
        from the same stream doubles repeated scalar calls would consume,
        and ``lo + span * u`` transforms each exactly like
        ``rng.uniform(lo, hi)``, so the values match the validating
        scalar-draw construction bit-for-bit.
        """
        lo = 1.0 - relative
        span = (1.0 + relative) - lo
        fields = (
            self.sort_mb,
            self.maintenance_mb,
            self.temp_mb,
            self.read_kb,
            self.write_kb,
        )
        k = sum(1 for v in fields if v > 0.0)
        if k:
            draws = iter(rng.random(size=k).tolist())
            fields = tuple(
                v * (lo + span * next(draws)) if v > 0.0 else v for v in fields
            )
        clone = object.__new__(QueryFootprint)
        set_ = object.__setattr__
        set_(clone, "rows_examined", self.rows_examined)
        set_(clone, "rows_returned", self.rows_returned)
        set_(clone, "sort_mb", fields[0])
        set_(clone, "maintenance_mb", fields[1])
        set_(clone, "temp_mb", fields[2])
        set_(clone, "read_kb", fields[3])
        set_(clone, "write_kb", fields[4])
        set_(clone, "parallel_fraction", self.parallel_fraction)
        set_(clone, "planner_sensitivity", self.planner_sensitivity)
        return clone


@dataclass(frozen=True, slots=True)
class QueryFamily:
    """A parameterised query template with a fixed resource profile.

    Generators emit queries by instantiating families; the DB simulator
    costs whole batches by ``count × footprint`` per family, which keeps
    10 000-requests-per-second experiments tractable.
    """

    name: str
    query_type: QueryType
    template: str
    weight: float
    footprint: QueryFootprint
    param_spec: tuple[str, ...] = field(default_factory=tuple)
    #: Precomputed templating result (or None when the family's text does
    #: not canonicalise — see ``family_template_info``). Excluded from
    #: equality/repr; derived from ``template``/``param_spec``.
    _template_info: object = field(default=None, compare=False, repr=False)
    #: ``template.split("%s")`` when the placeholder count matches
    #: ``param_spec`` (None otherwise): instantiation then builds the text
    #: with one join instead of repeated ``str.replace`` scans.
    _parts: object = field(default=None, compare=False, repr=False)
    #: ``(positive_field_indices, base_values)`` over the footprint's five
    #: jitterable fields, so per-query jitter skips rediscovering which
    #: fields draw.
    _jitter: object = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be >= 0")
        if not self.name:
            raise ValueError("family name must be non-empty")
        # Late import: templating imports Query from this module.
        from repro.workloads.templating import family_template_info

        set_ = object.__setattr__
        set_(
            self,
            "_template_info",
            family_template_info(self.template, tuple(self.param_spec)),
        )
        parts = tuple(self.template.split("%s"))
        set_(self, "_parts", parts if len(parts) == len(self.param_spec) + 1 else None)
        fp = self.footprint
        base = (fp.sort_mb, fp.maintenance_mb, fp.temp_mb, fp.read_kb, fp.write_kb)
        positives = tuple(i for i, v in enumerate(base) if v > 0.0)
        set_(self, "_jitter", (positives, base))

    def instantiate(self, rng: np.random.Generator) -> "Query":
        """Materialise one query with concrete parameters and jitter.

        This is the per-query hot path: parameter dispatch is inlined
        (matching ``_draw_param`` draw-for-draw), the text comes from one
        join over the precomputed template segments, the footprint jitter
        follows the plan computed at construction (bit-identical to
        ``QueryFootprint.jittered``), and both result objects bypass the
        dataclass constructors — the values are already validated.
        """
        rendered: list[str] = []
        for kind in self.param_spec:
            if kind == "int":
                piece = str(int(rng.integers(1, 1_000_000)))
            elif kind == "str":
                piece = "'v{:06d}'".format(int(rng.integers(0, 999_999)))
            elif kind == "float":
                piece = str(round(10_000.0 * rng.random(), 2))
            else:
                piece = str(self._draw_param(kind, rng))
            rendered.append(piece)
        parts = self._parts
        if parts is None:
            text = self.template
            for piece in rendered:
                text = text.replace("%s", piece, 1)
        elif rendered:
            chunks = [parts[0]]
            for i, piece in enumerate(rendered):
                chunks.append(piece)
                chunks.append(parts[i + 1])
            text = "".join(chunks)
        else:
            text = self.template

        positives, base = self._jitter
        vals = list(base)
        k = len(positives)
        if k:
            draws = rng.random(size=k).tolist()
            for j in range(k):
                i = positives[j]
                vals[i] = vals[i] * (_JITTER_LO + _JITTER_SPAN * draws[j])
        fp = self.footprint
        set_ = object.__setattr__
        clone = object.__new__(QueryFootprint)
        set_(clone, "rows_examined", fp.rows_examined)
        set_(clone, "rows_returned", fp.rows_returned)
        set_(clone, "sort_mb", vals[0])
        set_(clone, "maintenance_mb", vals[1])
        set_(clone, "temp_mb", vals[2])
        set_(clone, "read_kb", vals[3])
        set_(clone, "write_kb", vals[4])
        set_(clone, "parallel_fraction", fp.parallel_fraction)
        set_(clone, "planner_sensitivity", fp.planner_sensitivity)

        info = self._template_info
        if info is None:
            template = ""
            extracted: tuple[str, ...] = ()
        elif rendered:
            template = info.template
            extracted = tuple(
                [s if type(s) is str else rendered[s] for s in info.slots]
            )
        else:
            # No parameters: the extraction is the constant static slots.
            template = info.template
            extracted = info.slots

        query = object.__new__(Query)
        set_(query, "family", self.name)
        set_(query, "query_type", self.query_type)
        set_(query, "text", text)
        set_(query, "footprint", clone)
        set_(query, "template", template)
        set_(query, "params", extracted)
        return query

    @staticmethod
    def _draw_param(kind: str, rng: np.random.Generator) -> object:
        if kind == "int":
            return int(rng.integers(1, 1_000_000))
        if kind == "str":
            return "'v{:06d}'".format(int(rng.integers(0, 999_999)))
        if kind == "float":
            # Same stream double uniform(0, 10_000) would consume.
            return round(10_000.0 * rng.random(), 2)
        raise ValueError(f"unknown param kind {kind!r}")


@dataclass(frozen=True, slots=True)
class Query:
    """One concrete query as it would appear in the streaming query log.

    ``template``/``params`` are the precomputed templating results for
    generator-instantiated queries (empty template = not precomputed);
    :class:`~repro.workloads.templating.TemplateCatalog` uses them to skip
    re-deriving the template from the text on every observed query.
    """

    family: str
    query_type: QueryType
    text: str
    footprint: QueryFootprint
    template: str = ""
    params: tuple[str, ...] = ()

    @property
    def is_write(self) -> bool:
        return self.query_type.is_write
