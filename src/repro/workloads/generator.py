"""Workload generator base classes.

A workload is a set of :class:`~repro.workloads.query.QueryFamily` entries
with relative weights, a nominal request rate and a loaded database size.
Generators produce :class:`WorkloadBatch` values — the realised execution
counts per family over a time window plus a uniform sample of concrete
queries standing in for the streaming query log. The DB simulator costs
batches per-family (``count × footprint``), which keeps the paper's
10 000-requests-per-second experiments cheap to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import make_rng
from repro.workloads.query import Query, QueryFamily, QueryType

__all__ = ["WorkloadBatch", "WorkloadGenerator", "MixWorkload"]


@dataclass
class WorkloadBatch:
    """Realised work over one window of simulated time.

    Attributes
    ----------
    workload_name:
        Name of the generating workload (used for workload-mapping keys).
    duration_s:
        Window length in simulated seconds.
    requested_rps:
        Offered load; the database may achieve less.
    counts:
        Executions per family name.
    families:
        Family definitions, keyed by name.
    sampled_queries:
        A uniform sample of concrete queries, standing in for the portion
        of the streaming query log the TDE would read in this window.
    family_examples:
        One concrete query per family that executed this window. The real
        streaming log contains *every* statement, so rare-but-heavy
        templates are visible to a log scanner even when a uniform sample
        misses them; this field models that coverage.
    """

    workload_name: str
    duration_s: float
    requested_rps: float
    counts: dict[str, int]
    families: dict[str, QueryFamily]
    sampled_queries: list[Query] = field(default_factory=list)
    family_examples: list[Query] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        """Total executions across families."""
        return sum(self.counts.values())

    @property
    def write_fraction(self) -> float:
        """Fraction of executions that are writes (0.0 if batch empty)."""
        total = self.total_queries
        if total == 0:
            return 0.0
        writes = sum(
            count
            for name, count in self.counts.items()
            if self.families[name].query_type.is_write
        )
        return writes / total

    def count_by_type(self) -> dict[QueryType, int]:
        """Execution counts aggregated by :class:`QueryType`."""
        out: dict[QueryType, int] = {}
        for name, count in self.counts.items():
            qtype = self.families[name].query_type
            out[qtype] = out.get(qtype, 0) + count
        return out

    def scaled(self, factor: float) -> "WorkloadBatch":
        """A copy with all counts scaled by *factor* (rate modulation)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return WorkloadBatch(
            workload_name=self.workload_name,
            duration_s=self.duration_s,
            requested_rps=self.requested_rps * factor,
            counts={name: int(round(c * factor)) for name, c in self.counts.items()},
            families=dict(self.families),
            sampled_queries=list(self.sampled_queries),
            family_examples=list(self.family_examples),
        )


class WorkloadGenerator:
    """Base generator: weighted families + rate → batches.

    Subclasses define :attr:`families` (via ``_build_families``) and may
    override :meth:`rate_at` for time-varying arrival rates (the production
    trace does).

    Parameters
    ----------
    name:
        Workload name, e.g. ``"tpcc"``.
    rps:
        Nominal offered request rate.
    data_size_gb:
        Loaded database size; the buffer-pool model compares it against
        ``shared_buffers``.
    seed:
        Seed for all randomness in this generator.
    sample_size:
        Number of concrete queries to materialise per batch as the
        query-log sample.
    """

    def __init__(
        self,
        name: str,
        rps: float,
        data_size_gb: float,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        if rps < 0:
            raise ValueError("rps must be >= 0")
        if data_size_gb <= 0:
            raise ValueError("data_size_gb must be positive")
        self.name = name
        self.rps = rps
        self.data_size_gb = data_size_gb
        self.sample_size = sample_size
        self._rng = make_rng(seed)
        self.families: dict[str, QueryFamily] = {
            fam.name: fam for fam in self._build_families()
        }
        if not self.families:
            raise ValueError("generator defines no query families")

    def _build_families(self) -> list[QueryFamily]:
        raise NotImplementedError

    def rate_at(self, time_s: float) -> float:
        """Offered rate at simulated time *time_s*; constant by default."""
        del time_s
        return self.rps

    def batch(self, duration_s: float, start_time_s: float = 0.0) -> WorkloadBatch:
        """Generate the batch for ``[start_time_s, start_time_s + duration_s)``."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rate = self.rate_at(start_time_s)
        total = self._rng.poisson(rate * duration_s) if rate > 0 else 0
        names = list(self.families)
        weights = np.array([self.families[n].weight for n in names], dtype=float)
        weight_sum = weights.sum()
        if weight_sum <= 0:
            raise ValueError("family weights sum to zero")
        probs = weights / weight_sum
        counts = (
            self._rng.multinomial(total, probs)
            if total > 0
            else np.zeros(len(names), dtype=int)
        )
        count_map = {name: int(c) for name, c in zip(names, counts)}
        sampled = self._sample_queries(count_map)
        examples = [
            self.families[name].instantiate(self._rng)
            for name, count in count_map.items()
            if count > 0
        ]
        return WorkloadBatch(
            workload_name=self.name,
            duration_s=duration_s,
            requested_rps=rate,
            counts=count_map,
            families=dict(self.families),
            sampled_queries=sampled,
            family_examples=examples,
        )

    def _sample_queries(self, counts: dict[str, int]) -> list[Query]:
        """Materialise up to ``sample_size`` queries ∝ family counts."""
        total = sum(counts.values())
        if total == 0:
            return []
        n = min(self.sample_size, total)
        names = [name for name, c in counts.items() if c > 0]
        probs = np.array([counts[name] for name in names], dtype=float)
        probs /= probs.sum()
        picks = self._rng.choice(len(names), size=n, p=probs)
        return [self.families[names[i]].instantiate(self._rng) for i in picks]


class MixWorkload(WorkloadGenerator):
    """A workload assembled from an explicit family list.

    Useful in tests and for ad-hoc scenarios; the standard benchmarks
    subclass :class:`WorkloadGenerator` directly.
    """

    def __init__(
        self,
        name: str,
        families: list[QueryFamily],
        rps: float,
        data_size_gb: float,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        self._families_spec = list(families)
        super().__init__(name, rps, data_size_gb, seed=seed, sample_size=sample_size)

    def _build_families(self) -> list[QueryFamily]:
        return list(self._families_spec)
