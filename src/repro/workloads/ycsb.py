"""YCSB workload generator (workload-A-like read/update mix).

Point reads and point updates on a single table by primary key. Per
Fig. 2 of the paper YCSB "do[es] not use working memory (due to absence of
complex queries like aggregate, joins, and order-by)", so every family has
``sort_mb = 0``. The 50/50 mix makes it the paper's "mix" workload; its
updates still produce enough WAL to matter under write-heavy plots.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["YCSBWorkload"]


class YCSBWorkload(WorkloadGenerator):
    """YCSB with configurable read fraction (default 0.5, workload A)."""

    def __init__(
        self,
        rps: float = 5000.0,
        data_size_gb: float = 20.0,
        read_fraction: float = 0.5,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.read_fraction = read_fraction
        super().__init__("ycsb", rps, data_size_gb, seed=seed, sample_size=sample_size)

    def _build_families(self) -> list[QueryFamily]:
        return [
            QueryFamily(
                name="read",
                query_type=QueryType.SELECT,
                template="SELECT * FROM usertable WHERE ycsb_key = %s",
                weight=100.0 * self.read_fraction,
                footprint=QueryFootprint(
                    rows_examined=1,
                    rows_returned=1,
                    read_kb=4.0,
                ),
                param_spec=("int",),
            ),
            QueryFamily(
                name="update",
                query_type=QueryType.UPDATE,
                template="UPDATE usertable SET field0 = %s WHERE ycsb_key = %s",
                weight=100.0 * (1.0 - self.read_fraction),
                footprint=QueryFootprint(
                    rows_examined=1,
                    rows_returned=1,
                    read_kb=4.0,
                    write_kb=4.0,
                ),
                param_spec=("str", "int"),
            ),
        ]
