"""Workload substrate: query model, templating, sampling, generators.

Generators reproduce the workloads of the paper's evaluation (§5):
OLTP-Bench-style TPC-C, YCSB, Wikipedia, Twitter, the analytic
CH-benCHmark/TPC-H, the adulterated TPC-C of §3.1 and a synthetic stand-in
for the proprietary 33-day production trace.
"""

from repro.workloads.adulterated import AdulteratedTPCCWorkload, adulteration_families
from repro.workloads.chbench import CHBenchWorkload
from repro.workloads.generator import MixWorkload, WorkloadBatch, WorkloadGenerator
from repro.workloads.production import ProductionWorkload, diurnal_profile
from repro.workloads.query import Query, QueryFamily, QueryFootprint, QueryType
from repro.workloads.sampling import ReservoirSampler
from repro.workloads.templating import TemplateCatalog, make_template, template_id
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload
from repro.workloads.twitter import TwitterWorkload
from repro.workloads.wikipedia import WikipediaWorkload
from repro.workloads.ycsb import YCSBWorkload

__all__ = [
    "AdulteratedTPCCWorkload",
    "CHBenchWorkload",
    "MixWorkload",
    "ProductionWorkload",
    "Query",
    "QueryFamily",
    "QueryFootprint",
    "QueryType",
    "ReservoirSampler",
    "TemplateCatalog",
    "TPCCWorkload",
    "TPCHWorkload",
    "TwitterWorkload",
    "WikipediaWorkload",
    "WorkloadBatch",
    "WorkloadGenerator",
    "YCSBWorkload",
    "adulteration_families",
    "diurnal_profile",
    "make_template",
    "template_id",
]
