"""Adulterated TPC-C, §3.1 of the paper.

Plain TPC-C uses ~0.5 MB of working memory (Fig. 2) and cannot raise
memory throttles. To exercise every knob class the paper mixes extra
queries into the TPC-C bucket with a configurable *adulteration
probability* (Figs. 3 and 4 use 80% and 50%):

- complex sorts / aggregations        → ``work_mem`` / ``sort_buffer_size``
- create / delete indexes             → ``maintenance_work_mem`` /
  ``key_buffer_size``
- bulk deletes                        → ``maintenance_work_mem``
- temp tables + aggregations on them  → ``temp_buffers`` /
  ``tmp_table_size``

With adulteration probability ``p``, a fraction ``p`` of the emitted
statements comes from the adulteration families (split evenly) and the
remaining ``1 - p`` from the plain TPC-C mix.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType
from repro.workloads.tpcc import TPCCWorkload

__all__ = ["AdulteratedTPCCWorkload", "adulteration_families"]


def adulteration_families(weight_total: float) -> list[QueryFamily]:
    """The four adulteration families, sharing *weight_total* evenly.

    The ~350 MB aggregation footprint matches Fig. 2's "complex
    aggregation queries ... requires nearby 350 MB".
    """
    share = weight_total / 4.0
    return [
        QueryFamily(
            name="adult_complex_aggregate",
            query_type=QueryType.AGGREGATE,
            template=(
                "SELECT ol_i_id, SUM(ol_amount), COUNT(*) FROM order_line "
                "WHERE ol_delivery_d > %s GROUP BY ol_i_id "
                "ORDER BY SUM(ol_amount) DESC"
            ),
            weight=share,
            footprint=QueryFootprint(
                rows_examined=4_000_000,
                rows_returned=100_000,
                sort_mb=350.0,
                read_kb=600_000.0,
                parallel_fraction=0.7,
                planner_sensitivity=0.6,
            ),
            param_spec=("str",),
        ),
        QueryFamily(
            name="adult_create_index",
            query_type=QueryType.INDEX_CREATE,
            template="CREATE INDEX idx_ol_tmp_%s ON order_line (ol_amount)",
            weight=share,
            footprint=QueryFootprint(
                rows_examined=4_000_000,
                rows_returned=0,
                maintenance_mb=300.0,
                read_kb=500_000.0,
                write_kb=200_000.0,
            ),
            param_spec=("int",),
        ),
        QueryFamily(
            name="adult_bulk_delete",
            query_type=QueryType.DELETE,
            template="DELETE FROM history WHERE h_date < %s",
            weight=share,
            footprint=QueryFootprint(
                rows_examined=500_000,
                rows_returned=0,
                maintenance_mb=120.0,
                read_kb=80_000.0,
                write_kb=80_000.0,
            ),
            param_spec=("str",),
        ),
        QueryFamily(
            name="adult_temp_table_aggregate",
            query_type=QueryType.TEMP_TABLE,
            template=(
                "CREATE TEMP TABLE tmp_sales_%s AS "
                "SELECT ol_w_id, SUM(ol_amount) FROM order_line "
                "GROUP BY ol_w_id"
            ),
            weight=share,
            footprint=QueryFootprint(
                rows_examined=2_000_000,
                rows_returned=0,
                temp_mb=180.0,
                sort_mb=90.0,
                read_kb=300_000.0,
                write_kb=150_000.0,
            ),
            param_spec=("int",),
        ),
    ]


class AdulteratedTPCCWorkload(WorkloadGenerator):
    """TPC-C plus adulteration queries at probability *adulteration_p*.

    ``adulteration_p = 0`` degenerates to plain TPC-C; the paper's Figs. 3
    and 4 use 0.8 and 0.5 against scale-factor-18 TPC-C (~21 GB).
    """

    def __init__(
        self,
        adulteration_p: float = 0.8,
        rps: float = 3300.0,
        data_size_gb: float = 21.0,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        if not 0.0 <= adulteration_p <= 1.0:
            raise ValueError("adulteration_p must be in [0, 1]")
        self.adulteration_p = adulteration_p
        super().__init__(
            f"tpcc_adulterated_{int(adulteration_p * 100)}",
            rps,
            data_size_gb,
            seed=seed,
            sample_size=sample_size,
        )

    def _build_families(self) -> list[QueryFamily]:
        base = TPCCWorkload(seed=0)._build_families()
        base_total = sum(f.weight for f in base)
        p = self.adulteration_p
        if p >= 1.0:
            return adulteration_families(weight_total=base_total)
        if p <= 0.0:
            return base
        # Scale adulteration weight so its share of the total mix equals p.
        adult_total = base_total * p / (1.0 - p)
        return base + adulteration_families(weight_total=adult_total)
