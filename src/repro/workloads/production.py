"""Synthetic production customer workload (the paper's 33-day trace).

The paper captures a real customer's activity for 33 days: 132 tables,
42.13M queries/day on average — 71K SELECT, 41M INSERT, 34K UPDATE, 0.8K
DELETE per day over a 59 GB database — i.e. an insert-dominated telemetry
workload, with a diurnal arrival curve (Fig. 8) that is quiet overnight,
surges between 8 and 11 AM as microservice usage ramps, stays high through
the working day and declines in the evening.

We do not have the proprietary trace, so :class:`ProductionWorkload`
synthesises one from the *published* statistics: the per-type daily counts
fix the mix, and a smooth diurnal profile (trough ≈ 0.25× mean, morning
ramp into a ≈ 1.9× mean midday plateau) fixes the arrival shape, with
day-to-day multiplicative noise. Everything downstream (Figs. 6, 8, 9, 10c,
12, 13) consumes only the mix and the shape, both of which are published.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["ProductionWorkload", "DAILY_QUERY_COUNTS", "diurnal_profile"]

SECONDS_PER_DAY = 86_400.0

#: Published per-day statement counts for the captured customer trace.
DAILY_QUERY_COUNTS = {
    QueryType.SELECT: 71_000,
    QueryType.INSERT: 41_000_000,
    QueryType.UPDATE: 34_000,
    QueryType.DELETE: 800,
}

#: Mean offered rate implied by the published 42.13M queries/day.
MEAN_RPS = 42_130_000 / SECONDS_PER_DAY


def diurnal_profile(hour: float) -> float:
    """Relative load multiplier at *hour* of day (mean ≈ 1 over 24 h).

    Shape matched to Fig. 8: overnight trough, steep 8–11 AM ramp,
    midday plateau, evening decline.
    """
    hour = hour % 24.0
    if hour < 6.0:
        return 0.25
    if hour < 8.0:
        return 0.25 + 0.35 * (hour - 6.0) / 2.0  # pre-dawn drift up
    if hour < 11.0:
        return 0.60 + 1.30 * (hour - 8.0) / 3.0  # the 8-11 AM surge
    if hour < 17.0:
        return 1.90  # working-day plateau
    if hour < 22.0:
        return 1.90 - 1.45 * (hour - 17.0) / 5.0  # evening decline
    return 0.45 - 0.20 * (hour - 22.0) / 2.0


class ProductionWorkload(WorkloadGenerator):
    """Insert-dominated diurnal workload matching the published trace stats.

    Parameters
    ----------
    mean_rps:
        Daily-average offered rate; defaults to the published 42.13M/day.
    data_size_gb:
        Database size (paper: 59 GB).
    day_noise:
        Log-normal sigma of the day-to-day load multiplier.
    """

    def __init__(
        self,
        mean_rps: float = MEAN_RPS,
        data_size_gb: float = 59.0,
        day_noise: float = 0.08,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
        name: str = "production",
    ) -> None:
        self.day_noise = day_noise
        self._day_multipliers: dict[int, float] = {}
        super().__init__(
            name, mean_rps, data_size_gb, seed=seed, sample_size=sample_size
        )

    def rate_at(self, time_s: float) -> float:
        """Offered rate at simulated *time_s* (diurnal × daily noise)."""
        hour = (time_s % SECONDS_PER_DAY) / 3600.0
        day = int(time_s // SECONDS_PER_DAY)
        multiplier = self._day_multipliers.get(day)
        if multiplier is None:
            multiplier = float(self._rng.lognormal(0.0, self.day_noise))
            self._day_multipliers[day] = multiplier
        return self.rps * diurnal_profile(hour) * multiplier

    def _build_families(self) -> list[QueryFamily]:
        counts = DAILY_QUERY_COUNTS
        return [
            QueryFamily(
                name="telemetry_insert",
                query_type=QueryType.INSERT,
                template=(
                    "INSERT INTO events (device_id, metric, value, ts) "
                    "VALUES (%s, %s, %s, %s)"
                ),
                weight=float(counts[QueryType.INSERT]),
                footprint=QueryFootprint(
                    rows_examined=1,
                    rows_returned=1,
                    read_kb=2.0,
                    write_kb=3.0,
                ),
                param_spec=("int", "str", "float", "str"),
            ),
            QueryFamily(
                name="dashboard_select",
                query_type=QueryType.AGGREGATE,
                template=(
                    "SELECT metric, AVG(value), MAX(value) FROM events "
                    "WHERE device_id = %s AND ts > %s "
                    "GROUP BY metric ORDER BY metric"
                ),
                weight=float(counts[QueryType.SELECT]),
                footprint=QueryFootprint(
                    rows_examined=50_000,
                    rows_returned=40,
                    sort_mb=80.0,
                    read_kb=9_000.0,
                    parallel_fraction=0.5,
                    planner_sensitivity=0.6,
                ),
                param_spec=("int", "str"),
            ),
            QueryFamily(
                name="device_update",
                query_type=QueryType.UPDATE,
                template=(
                    "UPDATE devices SET last_seen = %s, status = %s "
                    "WHERE device_id = %s"
                ),
                weight=float(counts[QueryType.UPDATE]),
                footprint=QueryFootprint(
                    rows_examined=1,
                    rows_returned=1,
                    read_kb=4.0,
                    write_kb=4.0,
                ),
                param_spec=("str", "str", "int"),
            ),
            QueryFamily(
                name="retention_delete",
                query_type=QueryType.DELETE,
                template="DELETE FROM events WHERE ts < %s AND device_id = %s",
                weight=float(counts[QueryType.DELETE]),
                footprint=QueryFootprint(
                    rows_examined=200_000,
                    rows_returned=0,
                    maintenance_mb=60.0,
                    read_kb=30_000.0,
                    write_kb=30_000.0,
                ),
                param_spec=("str", "int"),
            ),
        ]
