"""Reservoir sampling over streaming query logs (Vitter, 1985).

The TDE selects which query templates to EXPLAIN by reservoir-sampling the
streaming log: every query seen so far has an equal probability of being in
the reservoir, without storing the stream. This is Vitter's Algorithm R;
the classic optimisation (Algorithm X-style skipping) is unnecessary at the
stream rates the simulator produces, so we keep the simple O(1)-per-item
form, which is exact.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Generic, TypeVar

import numpy as np

from repro.common.rng import make_rng

T = TypeVar("T")

__all__ = ["ReservoirSampler"]


class ReservoirSampler(Generic[T]):
    """Uniform fixed-size sample over an unbounded stream.

    Parameters
    ----------
    capacity:
        Reservoir size ``k``; after ``n >= k`` observations every item seen
        has probability ``k / n`` of being in :attr:`sample`.
    seed:
        Seed or generator for the replacement draws.
    """

    def __init__(self, capacity: int, seed: int | np.random.Generator | None = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._reservoir: list[T] = []
        self._seen = 0

    def observe(self, item: T) -> None:
        """Offer one stream item to the reservoir."""
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(item)
            return
        # Replace a random slot with probability capacity / seen.
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._reservoir[slot] = item

    def observe_many(self, items: Iterable[T]) -> None:
        """Offer every item of *items* in order."""
        for item in items:
            self.observe(item)

    @property
    def sample(self) -> list[T]:
        """Copy of the current reservoir contents."""
        return list(self._reservoir)

    @property
    def seen(self) -> int:
        """Total number of items observed."""
        return self._seen

    def __len__(self) -> int:
        return len(self._reservoir)

    def reset(self) -> None:
        """Empty the reservoir and the seen counter (new sampling window)."""
        self._reservoir.clear()
        self._seen = 0
