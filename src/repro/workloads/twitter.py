"""Twitter workload generator (OLTP-Bench profile).

High-rate read-heavy workload (the paper drives it at 10 000 requests per
second over 22 GB): tweet fetches, follower lists (small ORDER BY ...
LIMIT sorts) and a thin stream of tweet inserts. The small-but-nonzero
sorts and the follower-graph joins give it mild working-memory and
planner sensitivity, making it land in the "mix/read-heavy" panel of
Figs. 10–11.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["TwitterWorkload"]


class TwitterWorkload(WorkloadGenerator):
    """Twitter with ~90% reads, small sorts and a follower-graph join."""

    def __init__(
        self,
        rps: float = 10_000.0,
        data_size_gb: float = 22.0,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        super().__init__(
            "twitter", rps, data_size_gb, seed=seed, sample_size=sample_size
        )

    def _build_families(self) -> list[QueryFamily]:
        return [
            QueryFamily(
                name="get_tweet",
                query_type=QueryType.SELECT,
                template="SELECT * FROM tweets WHERE id = %s",
                weight=55.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=4.0
                ),
                param_spec=("int",),
            ),
            QueryFamily(
                name="get_tweets_from_following",
                query_type=QueryType.JOIN,
                template=(
                    "SELECT t.* FROM tweets t JOIN follows f ON t.uid = f.f2 "
                    "WHERE f.f1 = %s ORDER BY t.createdate DESC LIMIT 20"
                ),
                weight=25.0,
                footprint=QueryFootprint(
                    rows_examined=300,
                    rows_returned=20,
                    sort_mb=0.4,
                    read_kb=120.0,
                    parallel_fraction=0.2,
                    planner_sensitivity=0.5,
                ),
                param_spec=("int",),
            ),
            QueryFamily(
                name="get_followers",
                query_type=QueryType.ORDER_BY,
                template=(
                    "SELECT f2 FROM follows WHERE f1 = %s "
                    "ORDER BY f2 LIMIT 100"
                ),
                weight=10.0,
                footprint=QueryFootprint(
                    rows_examined=150,
                    rows_returned=100,
                    sort_mb=0.2,
                    read_kb=40.0,
                    planner_sensitivity=0.3,
                ),
                param_spec=("int",),
            ),
            QueryFamily(
                name="insert_tweet",
                query_type=QueryType.INSERT,
                template=(
                    "INSERT INTO tweets (uid, text, createdate) "
                    "VALUES (%s, %s, %s)"
                ),
                weight=10.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=4.0, write_kb=3.0
                ),
                param_spec=("int", "str", "str"),
            ),
        ]
