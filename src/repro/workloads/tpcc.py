"""TPC-C workload generator (OLTP-Bench transaction mix).

The five TPC-C transactions with the standard mix (45% NewOrder, 43%
Payment, 4% each of OrderStatus/Delivery/StockLevel). TPC-C is
write-heavy: NewOrder/Payment/Delivery dirty pages and produce WAL, which
is what makes it raise background-writer throttles in Figs. 10–11.

Working-memory demand follows Fig. 2 of the paper: TPC-C's sorts are tiny
(~0.5 MB total), far below PostgreSQL's 4 MB ``work_mem`` default, so plain
TPC-C cannot raise memory throttles — the motivation for the adulterated
variant in :mod:`repro.workloads.adulterated`.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["TPCCWorkload", "TPCC_SCALE_GB_PER_WAREHOUSE"]

# OLTP-Bench loads roughly 0.1 GB per warehouse at scale factor 1; the
# paper's "scale-factor of 18 ... around 21GB" implies ~1.17 GB per unit.
TPCC_SCALE_GB_PER_WAREHOUSE = 21.0 / 18.0


class TPCCWorkload(WorkloadGenerator):
    """TPC-C with the standard transaction mix.

    Parameters mirror the paper's Fig. 10 setup by default: 3300 requests
    per second against a 26 GB database.
    """

    def __init__(
        self,
        rps: float = 3300.0,
        data_size_gb: float = 26.0,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        super().__init__("tpcc", rps, data_size_gb, seed=seed, sample_size=sample_size)

    def _build_families(self) -> list[QueryFamily]:
        return [
            QueryFamily(
                name="new_order",
                query_type=QueryType.INSERT,
                template=(
                    "INSERT INTO new_order (no_o_id, no_d_id, no_w_id) "
                    "VALUES (%s, %s, %s)"
                ),
                weight=45.0,
                footprint=QueryFootprint(
                    rows_examined=12,
                    rows_returned=1,
                    sort_mb=0.05,
                    read_kb=24.0,
                    write_kb=18.0,
                ),
                param_spec=("int", "int", "int"),
            ),
            QueryFamily(
                name="payment",
                query_type=QueryType.UPDATE,
                template=(
                    "UPDATE customer SET c_balance = c_balance - %s "
                    "WHERE c_w_id = %s AND c_d_id = %s AND c_id = %s"
                ),
                weight=43.0,
                footprint=QueryFootprint(
                    rows_examined=4,
                    rows_returned=1,
                    sort_mb=0.02,
                    read_kb=16.0,
                    write_kb=10.0,
                ),
                param_spec=("float", "int", "int", "int"),
            ),
            QueryFamily(
                name="order_status",
                query_type=QueryType.SELECT,
                template=(
                    "SELECT o_id, o_carrier_id, o_entry_d FROM oorder "
                    "WHERE o_w_id = %s AND o_d_id = %s AND o_c_id = %s "
                    "ORDER BY o_id DESC"
                ),
                weight=4.0,
                footprint=QueryFootprint(
                    rows_examined=30,
                    rows_returned=15,
                    sort_mb=0.15,
                    read_kb=40.0,
                ),
                param_spec=("int", "int", "int"),
            ),
            QueryFamily(
                name="delivery",
                query_type=QueryType.UPDATE,
                template=(
                    "UPDATE oorder SET o_carrier_id = %s "
                    "WHERE o_w_id = %s AND o_d_id = %s AND o_id = %s"
                ),
                weight=4.0,
                footprint=QueryFootprint(
                    rows_examined=100,
                    rows_returned=10,
                    sort_mb=0.08,
                    read_kb=60.0,
                    write_kb=30.0,
                ),
                param_spec=("int", "int", "int", "int"),
            ),
            QueryFamily(
                name="stock_level",
                query_type=QueryType.JOIN,
                template=(
                    "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock "
                    "WHERE ol_w_id = %s AND ol_d_id = %s AND ol_o_id < %s "
                    "AND s_quantity < %s"
                ),
                weight=4.0,
                footprint=QueryFootprint(
                    rows_examined=400,
                    rows_returned=1,
                    sort_mb=0.5,
                    read_kb=200.0,
                    parallel_fraction=0.3,
                    planner_sensitivity=0.4,
                ),
                param_spec=("int", "int", "int", "int"),
            ),
        ]
