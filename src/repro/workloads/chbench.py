"""CH-benCHmark: the TPC-C + TPC-H hybrid the paper's Fig. 2 measures.

CH-benCHmark runs analytic TPC-H-style queries *concurrently with* the
TPC-C transaction mix over the same schema. The paper's Fig. 2 lists it
as the workload whose aggregation/join queries demand hundreds of MB of
working memory — the property that makes memory-knob throttles fire.

:class:`CHBenchWorkload` composes the two standard generators: the OLTP
side runs at the configured rate and the analytic side adds a low-rate
stream of heavy queries (a fraction of the total, like the benchmark's
analytical sessions).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload

__all__ = ["CHBenchWorkload"]


class CHBenchWorkload(WorkloadGenerator):
    """TPC-C transactions with concurrent TPC-H-style analytics.

    Parameters
    ----------
    rps:
        Total offered rate (transactions dominate).
    analytic_fraction:
        Share of statements that are analytic (CH-bench runs a handful of
        analytical sessions against thousands of transactional ones).
    """

    def __init__(
        self,
        rps: float = 3300.0,
        data_size_gb: float = 24.0,
        analytic_fraction: float = 0.002,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        if not 0.0 < analytic_fraction < 1.0:
            raise ValueError("analytic_fraction must be in (0, 1)")
        self.analytic_fraction = analytic_fraction
        super().__init__(
            "chbench", rps, data_size_gb, seed=seed, sample_size=sample_size
        )

    def _build_families(self) -> list[QueryFamily]:
        oltp = TPCCWorkload(seed=0)._build_families()
        olap = TPCHWorkload(seed=0)._build_families()
        oltp_total = sum(f.weight for f in oltp)
        olap_total = sum(f.weight for f in olap)
        # Scale the analytic side so its share of statements equals
        # analytic_fraction.
        scale = (
            oltp_total
            * self.analytic_fraction
            / ((1.0 - self.analytic_fraction) * olap_total)
        )
        rescaled = [
            QueryFamily(
                name=f"ch_{fam.name}",
                query_type=fam.query_type,
                template=fam.template,
                weight=fam.weight * scale,
                footprint=fam.footprint,
                param_spec=fam.param_spec,
            )
            for fam in olap
        ]
        return oltp + rescaled
