"""TPC-H / CH-benCHmark analytic workload generator.

The paper's Fig. 2 row "CH-Bench" shows heavy working-memory demand: large
hash joins, sorts and aggregations that need hundreds of MB and spill to
disk under default ``work_mem``. We model a small set of representative
analytic query shapes (a scan-aggregate, a multi-way join, a big sort and
a group-by) at a low request rate, as a decision-support workload would
run.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["TPCHWorkload"]


class TPCHWorkload(WorkloadGenerator):
    """Analytic CH-benCHmark-style queries (low rate, huge footprints)."""

    def __init__(
        self,
        rps: float = 2.0,
        data_size_gb: float = 24.0,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 100,
    ) -> None:
        super().__init__("tpch", rps, data_size_gb, seed=seed, sample_size=sample_size)

    def _build_families(self) -> list[QueryFamily]:
        return [
            QueryFamily(
                name="pricing_summary",  # Q1-like scan + aggregate
                query_type=QueryType.AGGREGATE,
                template=(
                    "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
                    "AVG(l_extendedprice) FROM lineitem "
                    "WHERE l_shipdate <= %s "
                    "GROUP BY l_returnflag, l_linestatus"
                ),
                weight=30.0,
                footprint=QueryFootprint(
                    rows_examined=6_000_000,
                    rows_returned=4,
                    sort_mb=280.0,
                    read_kb=900_000.0,
                    parallel_fraction=0.85,
                    planner_sensitivity=0.7,
                ),
                param_spec=("str",),
            ),
            QueryFamily(
                name="shipping_priority",  # Q3-like 3-way join + sort
                query_type=QueryType.JOIN,
                template=(
                    "SELECT l_orderkey, SUM(l_extendedprice) AS revenue "
                    "FROM customer, orders, lineitem "
                    "WHERE c_mktsegment = %s AND c_custkey = o_custkey "
                    "AND l_orderkey = o_orderkey "
                    "GROUP BY l_orderkey ORDER BY revenue DESC"
                ),
                weight=30.0,
                footprint=QueryFootprint(
                    rows_examined=3_000_000,
                    rows_returned=10,
                    sort_mb=350.0,
                    read_kb=500_000.0,
                    parallel_fraction=0.8,
                    planner_sensitivity=0.8,
                ),
                param_spec=("str",),
            ),
            QueryFamily(
                name="big_sort",  # ORDER BY over a large projection
                query_type=QueryType.ORDER_BY,
                template=(
                    "SELECT o_orderkey, o_totalprice FROM orders "
                    "WHERE o_orderdate >= %s ORDER BY o_totalprice DESC"
                ),
                weight=20.0,
                footprint=QueryFootprint(
                    rows_examined=1_500_000,
                    rows_returned=1_500_000,
                    sort_mb=200.0,
                    read_kb=250_000.0,
                    parallel_fraction=0.6,
                    planner_sensitivity=0.6,
                ),
                param_spec=("str",),
            ),
            QueryFamily(
                name="top_supplier",  # group-by with hash aggregate
                query_type=QueryType.AGGREGATE,
                template=(
                    "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) "
                    "FROM lineitem WHERE l_shipdate >= %s "
                    "GROUP BY l_suppkey"
                ),
                weight=20.0,
                footprint=QueryFootprint(
                    rows_examined=2_000_000,
                    rows_returned=10_000,
                    sort_mb=160.0,
                    read_kb=350_000.0,
                    parallel_fraction=0.75,
                    planner_sensitivity=0.7,
                ),
                param_spec=("str",),
            ),
        ]
