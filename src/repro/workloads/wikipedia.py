"""Wikipedia workload generator (OLTP-Bench profile).

Overwhelmingly read-heavy: article fetches by title, watchlist lookups,
occasional page edits. Like YCSB it uses no working memory (Fig. 2) —
lookups are index point reads — so it raises memory throttles only through
the buffer pool, and Table 1's transition #4 (Wiki → YCSB) raises none.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.query import QueryFamily, QueryFootprint, QueryType

__all__ = ["WikipediaWorkload"]


class WikipediaWorkload(WorkloadGenerator):
    """Wikipedia with ~92% reads and small page-edit writes."""

    def __init__(
        self,
        rps: float = 1000.0,
        data_size_gb: float = 12.0,
        seed: int | np.random.Generator | None = 0,
        sample_size: int = 200,
    ) -> None:
        super().__init__(
            "wikipedia", rps, data_size_gb, seed=seed, sample_size=sample_size
        )

    def _build_families(self) -> list[QueryFamily]:
        return [
            QueryFamily(
                name="get_page_anonymous",
                query_type=QueryType.SELECT,
                template=(
                    "SELECT page_id, page_latest FROM page "
                    "WHERE page_namespace = %s AND page_title = %s"
                ),
                weight=70.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=8.0
                ),
                param_spec=("int", "str"),
            ),
            QueryFamily(
                name="get_page_authenticated",
                query_type=QueryType.SELECT,
                template=(
                    "SELECT rev_text_id FROM revision WHERE rev_id = %s"
                ),
                weight=22.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=12.0
                ),
                param_spec=("int",),
            ),
            QueryFamily(
                name="add_watchlist",
                query_type=QueryType.INSERT,
                template=(
                    "INSERT INTO watchlist (wl_user, wl_namespace, wl_title) "
                    "VALUES (%s, %s, %s)"
                ),
                weight=1.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=4.0, write_kb=2.0
                ),
                param_spec=("int", "int", "str"),
            ),
            QueryFamily(
                name="update_page",
                query_type=QueryType.UPDATE,
                template=(
                    "UPDATE page SET page_latest = %s, page_touched = %s "
                    "WHERE page_id = %s"
                ),
                weight=7.0,
                footprint=QueryFootprint(
                    rows_examined=1, rows_returned=1, read_kb=8.0, write_kb=16.0
                ),
                param_spec=("int", "str", "int"),
            ),
        ]
