"""Deterministic random number generation helpers.

The library never touches global random state. Components either receive a
:class:`numpy.random.Generator` directly or derive one from a parent
generator plus a stable string label, so that adding a new consumer of
randomness does not perturb the streams seen by existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "derive_rng", "stream_root", "substream"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for an OS-entropy-seeded generator. Library code should always
    pass an explicit seed; ``None`` exists for interactive exploration.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from *parent* and *label*.

    The child stream is a function of the parent's next draw and a CRC of
    the label, so two children derived with different labels are
    independent, and the same (parent state, label) pair always yields the
    same child.
    """
    base = int(parent.integers(0, 2**32))
    salt = zlib.crc32(label.encode("utf-8"))
    return np.random.default_rng((base << 32) ^ salt)


def stream_root(seed: int | np.random.Generator | None = 0) -> int:
    """Collapse *seed* to one integer entropy root for keyed substreams.

    An integer seed is used as-is, so roots are stable across processes;
    a generator contributes one draw (deterministic given its state);
    ``None`` yields an OS-entropy root, matching :func:`make_rng`.
    """
    if isinstance(seed, int):
        return seed
    return int(make_rng(seed).integers(0, 2**63))


def substream(root: int, *keys: int | str) -> np.random.Generator:
    """Independent substream of *root* addressed by a key path.

    Unlike :func:`derive_rng` — which advances the parent, making each
    child a function of *derivation order* — a substream is a pure
    function of ``(root, keys)`` via ``numpy``'s ``SeedSequence`` spawn
    keys. Any process can therefore reconstruct any member's stream
    without replaying the draws of the members before it, which is what
    makes sharded fleet execution invariant to shard and worker count
    (see :mod:`repro.parallel`).
    """
    spawn_key = tuple(
        key if isinstance(key, int) else zlib.crc32(key.encode("utf-8"))
        for key in keys
    )
    return np.random.default_rng(np.random.SeedSequence(root, spawn_key=spawn_key))
