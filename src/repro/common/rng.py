"""Deterministic random number generation helpers.

The library never touches global random state. Components either receive a
:class:`numpy.random.Generator` directly or derive one from a parent
generator plus a stable string label, so that adding a new consumer of
randomness does not perturb the streams seen by existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for an OS-entropy-seeded generator. Library code should always
    pass an explicit seed; ``None`` exists for interactive exploration.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from *parent* and *label*.

    The child stream is a function of the parent's next draw and a CRC of
    the label, so two children derived with different labels are
    independent, and the same (parent state, label) pair always yields the
    same child.
    """
    base = int(parent.integers(0, 2**32))
    salt = zlib.crc32(label.encode("utf-8"))
    return np.random.default_rng((base << 32) ^ salt)
