"""A minimal append-only time series used throughout the simulator.

Monitoring agents (the Dynatrace stand-in), the storage model and the
benchmark harnesses all exchange ``TimeSeries`` values: pairs of
``(timestamp_seconds, value)`` with convenience reductions. Timestamps are
simulated seconds, not wall clock.

Storage is a pair of preallocated ``float64`` arrays with doubling
capacity and a start offset, so the fleet-scale hot operations — a disk
model emitting hundreds of per-second samples per window, a monitoring
agent copying whole windows and trimming retention — are array copies and
pointer moves instead of per-element list traffic. Every reduction reads
the same float64 values the previous list-backed implementation produced,
so all derived numbers (means that feed metric vectors, peak timestamps,
golden-trace bytes) are bit-identical.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["TimeSeries"]

_INITIAL_CAPACITY = 16


class TimeSeries:
    """Append-only series of ``(time, value)`` samples.

    Parameters
    ----------
    name:
        Metric name, e.g. ``"disk.write_latency_ms"``.
    unit:
        Human-readable unit used by benchmark printouts.
    """

    __slots__ = ("name", "unit", "_buf_t", "_buf_v", "_start", "_end")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._buf_t: np.ndarray = np.empty(0)
        self._buf_v: np.ndarray = np.empty(0)
        self._start = 0
        self._end = 0

    # -- internal buffer management -------------------------------------------

    def _reserve(self, extra: int) -> None:
        """Ensure room for *extra* more samples past ``_end``.

        Growth doubles capacity; a grow also compacts the dropped prefix
        (see :meth:`drop_before`) so capacity tracks the live sample
        count, not the append history.
        """
        n = self._end - self._start
        if self._end + extra <= len(self._buf_t) and self._start == 0:
            return
        if self._end + extra <= len(self._buf_t) and n + extra <= self._start:
            # Plenty of dead prefix but no need to grow; fall through to
            # compaction only when the tail runs out.
            return
        capacity = max(_INITIAL_CAPACITY, len(self._buf_t))
        while capacity < n + extra:
            capacity *= 2
        if capacity != len(self._buf_t) or self._start:
            new_t = np.empty(capacity)
            new_v = np.empty(capacity)
            new_t[:n] = self._buf_t[self._start : self._end]
            new_v[:n] = self._buf_v[self._start : self._end]
            self._buf_t = new_t
            self._buf_v = new_v
            self._start = 0
            self._end = n

    def _times_view(self) -> np.ndarray:
        return self._buf_t[self._start : self._end]

    def _values_view(self) -> np.ndarray:
        return self._buf_v[self._start : self._end]

    @classmethod
    def from_window(
        cls, name: str, unit: str, times: np.ndarray, values: np.ndarray
    ) -> "TimeSeries":
        """Build a series directly from aligned float arrays.

        The fast path for per-window producers (the disk model) whose
        timestamps are monotone by construction; *times* and *values* are
        copied, so callers may keep mutating their arrays.
        """
        if len(times) != len(values):
            raise ValueError("times and values must have the same length")
        out = cls(name, unit)
        out._buf_t = np.array(times, dtype=float)
        out._buf_v = np.array(values, dtype=float)
        out._end = len(out._buf_t)
        return out

    # -- appends ----------------------------------------------------------------

    def append(self, time: float, value: float) -> None:
        """Append one sample; *time* must be >= the last appended time."""
        if self._end > self._start and time < self._buf_t[self._end - 1]:
            raise ValueError(
                f"non-monotonic timestamp {time} < "
                f"{self._buf_t[self._end - 1]} in {self.name}"
            )
        self._reserve(1)
        self._buf_t[self._end] = float(time)
        self._buf_v[self._end] = float(value)
        self._end += 1

    def extend(self, samples: Iterable[tuple[float, float]]) -> None:
        """Append many ``(time, value)`` samples in order."""
        for time, value in samples:
            self.append(time, value)

    def extend_arrays(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk-append aligned *times*/*values* arrays.

        Equivalent to appending element by element, with the monotonicity
        check done once over the whole block — the per-second simulator
        loops emit hundreds of samples per window, and per-call overhead
        dominates ``append`` at fleet scale.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        if len(times) != len(values):
            raise ValueError("times and values must have the same length")
        if self._end > self._start and times[0] < self._buf_t[self._end - 1]:
            raise ValueError(
                f"non-monotonic timestamp {times[0]} < "
                f"{self._buf_t[self._end - 1]} in {self.name}"
            )
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError(f"non-monotonic timestamps in {self.name}")
        k = len(times)
        self._reserve(k)
        self._buf_t[self._end : self._end + k] = times
        self._buf_v[self._end : self._end + k] = np.asarray(values, dtype=float)
        self._end += k

    def extend_series(self, other: "TimeSeries") -> None:
        """Bulk-append every sample of *other*.

        *other*'s samples are already monotone (an append-time invariant),
        so only the boundary needs checking and the copies are two array
        assignments. The monitoring agents copy whole per-second series
        every window, which made sample-by-sample appends a fleet-scale
        hotspot.
        """
        k = len(other)
        if k == 0:
            return
        times = other._times_view()
        if self._end > self._start and times[0] < self._buf_t[self._end - 1]:
            raise ValueError(
                f"non-monotonic timestamp {times[0]} < "
                f"{self._buf_t[self._end - 1]}"
                f" in {self.name}"
            )
        self._reserve(k)
        self._buf_t[self._end : self._end + k] = times
        self._buf_v[self._end : self._end + k] = other._values_view()
        self._end += k

    def drop_before(self, time: float) -> None:
        """Discard all samples with timestamp strictly below *time*.

        Retention trimming for consumers that only read recent history;
        the samples are sorted, so this is one bisect plus a start-offset
        move (the dead prefix is reclaimed on the next buffer grow).
        """
        k = int(np.searchsorted(self._times_view(), time, side="left"))
        if k:
            self._start += k

    def __len__(self) -> int:
        return self._end - self._start

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(
            zip(self._times_view().tolist(), self._values_view().tolist())
        )

    @property
    def times(self) -> np.ndarray:
        """Timestamps as a float array (a copy; callers may mutate it)."""
        return self._times_view().copy()

    @property
    def values(self) -> np.ndarray:
        """Values as a float array (a copy; callers may mutate it)."""
        return self._values_view().copy()

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series with ``start <= time < end``."""
        times = self._times_view()
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        out = TimeSeries(self.name, self.unit)
        if hi > lo:
            out._buf_t = times[lo:hi].copy()
            out._buf_v = self._values_view()[lo:hi].copy()
            out._end = hi - lo
        return out

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 for an empty series)."""
        return float(np.mean(self._values_view())) if len(self) else 0.0

    def max(self) -> float:
        """Maximum value (0.0 for an empty series)."""
        return float(np.max(self._values_view())) if len(self) else 0.0

    def std(self) -> float:
        """Population standard deviation (0.0 for fewer than 2 samples)."""
        if len(self) < 2:
            return 0.0
        return float(np.std(self._values_view()))

    def peaks(self, threshold: float) -> list[float]:
        """Timestamps of local maxima whose value exceeds *threshold*.

        Used by the background-writer detector to find checkpoint-induced
        latency peaks and measure the time between them.
        """
        found: list[float] = []
        values = self._values_view().tolist()
        times = self._times_view().tolist()
        for i in range(1, len(values) - 1):
            is_local_max = values[i] >= values[i - 1] and values[i] >= values[i + 1]
            if is_local_max and values[i] > threshold:
                found.append(times[i])
        return found

    def resample_mean(self, bucket_seconds: float) -> "TimeSeries":
        """Bucket the series by *bucket_seconds* and average each bucket."""
        out = TimeSeries(self.name, self.unit)
        if not len(self):
            return out
        bucket_start = float(self._buf_t[self._start])
        acc: list[float] = []
        for time, value in self:
            if time >= bucket_start + bucket_seconds:
                if acc:
                    out.append(bucket_start, float(np.mean(acc)))
                while time >= bucket_start + bucket_seconds:
                    bucket_start += bucket_seconds
                acc = []
            acc.append(value)
        if acc:
            out.append(bucket_start, float(np.mean(acc)))
        return out

    def __getstate__(self) -> tuple[str, str, np.ndarray, np.ndarray]:
        # Pickle only the live samples: spare capacity and dropped
        # prefixes are np.empty garbage, and shipping them would make
        # snapshot bytes depend on append/trim history.
        return (self.name, self.unit, self.times, self.values)

    def __setstate__(
        self, state: tuple[str, str, np.ndarray, np.ndarray]
    ) -> None:
        name, unit, times, values = state
        self.name = name
        self.unit = unit
        self._buf_t = np.asarray(times, dtype=float)
        self._buf_v = np.asarray(values, dtype=float)
        self._start = 0
        self._end = len(self._buf_t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self)}, mean={self.mean():.3f})"
