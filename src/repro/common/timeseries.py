"""A minimal append-only time series used throughout the simulator.

Monitoring agents (the Dynatrace stand-in), the storage model and the
benchmark harnesses all exchange ``TimeSeries`` values: pairs of
``(timestamp_seconds, value)`` with convenience reductions. Timestamps are
simulated seconds, not wall clock.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """Append-only series of ``(time, value)`` samples.

    Parameters
    ----------
    name:
        Metric name, e.g. ``"disk.write_latency_ms"``.
    unit:
        Human-readable unit used by benchmark printouts.
    """

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Append one sample; *time* must be >= the last appended time."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"non-monotonic timestamp {time} < {self._times[-1]} in {self.name}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def extend(self, samples: Iterable[tuple[float, float]]) -> None:
        """Append many ``(time, value)`` samples in order."""
        for time, value in samples:
            self.append(time, value)

    def extend_arrays(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk-append aligned *times*/*values* arrays.

        Equivalent to appending element by element, with the monotonicity
        check done once over the whole block — the per-second simulator
        loops emit hundreds of samples per window, and per-call overhead
        dominates ``append`` at fleet scale.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        if len(times) != len(values):
            raise ValueError("times and values must have the same length")
        if self._times and times[0] < self._times[-1]:
            raise ValueError(
                f"non-monotonic timestamp {times[0]} < {self._times[-1]} in {self.name}"
            )
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError(f"non-monotonic timestamps in {self.name}")
        self._times.extend(times.tolist())
        self._values.extend(np.asarray(values, dtype=float).tolist())

    def extend_series(self, other: "TimeSeries") -> None:
        """Bulk-append every sample of *other*.

        Equivalent to ``extend(iter(other))``; *other*'s samples are
        already monotone (an append-time invariant), so only the boundary
        needs checking and the copies are two C-level list extends. The
        monitoring agents copy whole per-second series every window, which
        made sample-by-sample appends a fleet-scale hotspot.
        """
        times = other._times
        if not times:
            return
        if self._times and times[0] < self._times[-1]:
            raise ValueError(
                f"non-monotonic timestamp {times[0]} < {self._times[-1]}"
                f" in {self.name}"
            )
        self._times.extend(times)
        self._values.extend(other._values)

    def drop_before(self, time: float) -> None:
        """Discard all samples with timestamp strictly below *time*.

        Retention trimming for consumers that only read recent history;
        the samples are sorted, so this is one bisect plus a prefix del.
        """
        k = bisect_left(self._times, time)
        if k:
            del self._times[:k]
            del self._values[:k]

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Timestamps as a float array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Values as a float array."""
        return np.asarray(self._values, dtype=float)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series with ``start <= time < end``."""
        out = TimeSeries(self.name, self.unit)
        for time, value in self:
            if start <= time < end:
                out.append(time, value)
        return out

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 for an empty series)."""
        return float(np.mean(self._values)) if self._values else 0.0

    def max(self) -> float:
        """Maximum value (0.0 for an empty series)."""
        return float(np.max(self._values)) if self._values else 0.0

    def std(self) -> float:
        """Population standard deviation (0.0 for fewer than 2 samples)."""
        if len(self._values) < 2:
            return 0.0
        return float(np.std(self._values))

    def peaks(self, threshold: float) -> list[float]:
        """Timestamps of local maxima whose value exceeds *threshold*.

        Used by the background-writer detector to find checkpoint-induced
        latency peaks and measure the time between them.
        """
        found: list[float] = []
        values = self._values
        for i in range(1, len(values) - 1):
            is_local_max = values[i] >= values[i - 1] and values[i] >= values[i + 1]
            if is_local_max and values[i] > threshold:
                found.append(self._times[i])
        return found

    def resample_mean(self, bucket_seconds: float) -> "TimeSeries":
        """Bucket the series by *bucket_seconds* and average each bucket."""
        out = TimeSeries(self.name, self.unit)
        if not self._times:
            return out
        bucket_start = self._times[0]
        acc: list[float] = []
        for time, value in self:
            if time >= bucket_start + bucket_seconds:
                if acc:
                    out.append(bucket_start, float(np.mean(acc)))
                while time >= bucket_start + bucket_seconds:
                    bucket_start += bucket_seconds
                acc = []
            acc.append(value)
        if acc:
            out.append(bucket_start, float(np.mean(acc)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self)}, mean={self.mean():.3f})"
