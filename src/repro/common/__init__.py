"""Shared infrastructure: seeded randomness, time series, small statistics.

Everything in :mod:`repro` that needs randomness takes a
``numpy.random.Generator`` (or a seed) explicitly so that every experiment
in the benchmark suite is reproducible bit-for-bit.
"""

from repro.common.recording import NULL_RECORDER, NullRecorder, Recorder, Span
from repro.common.rng import derive_rng, make_rng, stream_root, substream
from repro.common.stats import exponential_moving_average, percentile
from repro.common.timeseries import TimeSeries

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "TimeSeries",
    "derive_rng",
    "exponential_moving_average",
    "make_rng",
    "percentile",
    "stream_root",
    "substream",
]
