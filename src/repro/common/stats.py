"""Small statistics helpers shared by detectors and tuners."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["percentile", "exponential_moving_average"]


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) of *values*.

    Raises ``ValueError`` on an empty input: every caller in the library
    has a meaningful "no data" branch and should take it explicitly rather
    than receive a silent 0.
    """
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def exponential_moving_average(values: Sequence[float], alpha: float) -> list[float]:
    """EMA of *values* with smoothing factor ``alpha`` in (0, 1]."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha={alpha} outside (0, 1]")
    out: list[float] = []
    ema: float | None = None
    for value in values:
        ema = value if ema is None else alpha * value + (1.0 - alpha) * ema
        out.append(ema)
    return out
