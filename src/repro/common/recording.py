"""The recorder seam: how the control plane reports what it is doing.

The observability subsystem (:mod:`repro.obs`) must see every control
plane decision — TDE verdicts, director routing, DFA applies, fault
firings — without the control plane depending on it. This module is the
seam: a :class:`Recorder` base whose every method is a no-op, living in
``common/`` so that ``core/`` (and ``faults/``, ``tuners/``) can accept a
``recorder`` parameter while never importing ``repro.obs``. The live
implementation (:class:`repro.obs.TraceRecorder`) subclasses it.

Determinism contract: with the default :data:`NULL_RECORDER` every call
is a no-op that draws no randomness, reads no clock and allocates no
state, so instrumented code paths stay byte-identical to uninstrumented
ones. A live recorder only ever *observes* simulated time — it is told
the clock via :meth:`Recorder.advance`, it never reads one.

The interface is deliberately small:

- :meth:`Recorder.advance` — move the recorder's simulated clock (the
  landscape step loop calls this once per window);
- :meth:`Recorder.span` — a context manager bracketing one unit of work
  (a window, a routing decision, an apply), optionally with an explicit
  simulated duration (a tuner's modelled recommendation cost, a DFA's
  backoff budget);
- :meth:`Recorder.event` — one instantaneous structured fact;
- :meth:`Recorder.inc` / :meth:`Recorder.set_gauge` /
  :meth:`Recorder.observe` — counter / gauge / histogram samples for the
  metrics registry.
"""

from __future__ import annotations

from types import TracebackType

__all__ = ["Span", "Recorder", "NullRecorder", "NULL_SPAN", "NULL_RECORDER"]


class Span:
    """A no-op span handle; live recorders return a recording subclass.

    Usable directly as a context manager. :meth:`set` attaches attributes
    to the span after it is opened (e.g. the verdict of the work it
    brackets).
    """

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (no-op here)."""

    def __enter__(self) -> Span:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


#: Shared reusable no-op span (stateless, so one instance suffices).
NULL_SPAN = Span()


class Recorder:
    """All-no-op recorder; the default for every instrumented seam."""

    __slots__ = ()

    def advance(self, now_s: float) -> None:
        """Move the recorder's simulated clock to *now_s* (monotonic)."""

    def span(
        self,
        name: str,
        *,
        instance: str = "",
        duration_s: float | None = None,
        **attrs: object,
    ) -> Span:
        """Open a span named *name*; use as a context manager.

        ``duration_s`` pins the span's simulated duration explicitly
        (modelled costs); without it the span closes at the recorder's
        clock position on exit.
        """
        return NULL_SPAN

    def event(self, name: str, *, instance: str = "", **attrs: object) -> None:
        """Record one instantaneous structured event."""

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment counter *name* for the given label set."""

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set gauge *name* for the given label set."""

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into histogram *name*."""


class NullRecorder(Recorder):
    """Explicitly-named no-op recorder (``Recorder`` is already no-op)."""

    __slots__ = ()


#: Shared no-op recorder instances normalise ``recorder=None`` against.
NULL_RECORDER = NullRecorder()
