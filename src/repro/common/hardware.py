"""VM resource catalog (the AWS instance types of §5).

The paper provisions database services on t2.small, t2.medium, m4.large,
t2.large and m4.xlarge, tuner instances on m4.xlarge, and the Fig. 2
measurement on t3.xlarge. The simulator only needs each type's vCPU count,
memory and storage profile — these drive the knob caps, swap penalties and
plan-upgrade escalations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskKind", "VMType", "VM_TYPES", "vm_type"]


@dataclass(frozen=True)
class DiskKind:
    """Storage device profile backing a VM.

    ``base_latency_ms`` is the per-IO service latency at low queue depth;
    ``throughput_mb_s`` caps sustained sequential bandwidth; ``max_iops``
    caps random-IO rate. The background-writer detector requires training
    and live systems to share a profile (§3.2's SSD/HDD constraint).
    """

    name: str
    base_latency_ms: float
    throughput_mb_s: float
    max_iops: float


SSD = DiskKind("ssd", base_latency_ms=0.6, throughput_mb_s=250.0, max_iops=8_000.0)
HDD = DiskKind("hdd", base_latency_ms=7.5, throughput_mb_s=120.0, max_iops=300.0)


@dataclass(frozen=True)
class VMType:
    """One cloud instance type."""

    name: str
    vcpus: int
    memory_mb: float
    disk: DiskKind = SSD

    @property
    def db_memory_limit_mb(self) -> float:
        """Memory the database process may use (total minus OS headroom).

        We reserve 20% (min 256 MB) for the OS, monitoring agents and the
        TDE plugin itself.
        """
        return self.memory_mb - max(256.0, 0.2 * self.memory_mb)


VM_TYPES: dict[str, VMType] = {
    vm.name: vm
    for vm in (
        VMType("t2.small", vcpus=1, memory_mb=2_048),
        VMType("t2.medium", vcpus=2, memory_mb=4_096),
        VMType("t2.large", vcpus=2, memory_mb=8_192),
        VMType("m4.large", vcpus=2, memory_mb=8_192),
        VMType("m4.xlarge", vcpus=4, memory_mb=16_384),
        VMType("t3.xlarge", vcpus=4, memory_mb=16_384),
    )
}


def vm_type(name: str) -> VMType:
    """Look up a VM type by name."""
    try:
        return VM_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown VM type {name!r}; known: {sorted(VM_TYPES)}"
        ) from None
