"""The live trace recorder: deterministic spans, events and metrics.

Span and event identity is derived from a per-recorder counter — never
wall clock, never ``id()`` — so two identical seeded runs produce
byte-identical traces. Simulated time is *told* to the recorder (the
landscape step loop calls :meth:`TraceRecorder.advance` once per window);
spans either close at the clock position on exit or carry an explicit
modelled duration (a tuner's recommendation cost, a DFA backoff budget).

Host-time profiling (``host_time=True``) additionally stamps each span
with ``time.perf_counter`` deltas for self/cumulative attribution. Host
times are intentionally **excluded** from the deterministic exports
(:mod:`repro.obs.export`); they only feed the profile report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType

from repro.common.recording import Recorder, Span
from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceEvent", "TraceSpan", "TraceRecorder"]


@dataclass(slots=True)
class TraceEvent:
    """One instantaneous structured event."""

    seq: int
    time_s: float
    name: str
    instance: str = ""
    attrs: dict[str, object] = field(default_factory=dict)


@dataclass(slots=True)
class TraceSpan(Span):
    """One completed (or open) span in the trace tree."""

    span_id: int
    parent_id: int | None
    seq: int
    name: str
    instance: str = ""
    start_sim_s: float = 0.0
    end_sim_s: float = 0.0
    #: Sequence position at close — stack discipline guarantees a span's
    #: (seq, end_seq) interval strictly contains every child's.
    end_seq: int = 0
    attrs: dict[str, object] = field(default_factory=dict)
    #: Pinned simulated duration (None: close at the clock on exit).
    pinned_duration_s: float | None = None
    #: Host-time cost of the span body (profiling runs only).
    host_s: float | None = None
    _recorder: "TraceRecorder | None" = None
    _host_t0: float = 0.0

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "TraceSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._recorder is not None:
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            self._recorder._close(self)
        return None

    @property
    def duration_s(self) -> float:
        return self.end_sim_s - self.start_sim_s


class TraceRecorder(Recorder):
    """Recorder that keeps everything: spans, events, metrics.

    Parameters
    ----------
    host_time:
        Stamp spans with ``perf_counter`` deltas for host-time profiling.
        Off by default — host times are non-deterministic by nature and
        never appear in the exported JSONL either way.
    metrics:
        Registry to record counters/gauges/histograms into (a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` by default).
    """

    def __init__(
        self,
        host_time: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.now_s = 0.0
        self.host_time = host_time
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[TraceSpan] = []  # every opened span, open order
        self.events: list[TraceEvent] = []
        self._next_span_id = 1
        self._next_seq = 1
        self._stack: list[TraceSpan] = []

    # -- clock -------------------------------------------------------------------

    def advance(self, now_s: float) -> None:
        if now_s < self.now_s:
            raise ValueError(
                f"simulated time went backwards: {now_s} < {self.now_s}"
            )
        self.now_s = now_s

    def _seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # -- spans -------------------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        instance: str = "",
        duration_s: float | None = None,
        **attrs: object,
    ) -> TraceSpan:
        if duration_s is not None and duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        parent = self._stack[-1] if self._stack else None
        span = TraceSpan(
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            seq=self._seq(),
            name=name,
            instance=instance or (parent.instance if parent is not None else ""),
            start_sim_s=self.now_s,
            end_sim_s=self.now_s,
            attrs=dict(attrs),
            pinned_duration_s=duration_s,
            _recorder=self,
        )
        if self.host_time:
            span._host_t0 = time.perf_counter()
        self._next_span_id += 1
        self._stack.append(span)
        self.spans.append(span)
        return span

    def _close(self, span: TraceSpan) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of stack order"
            )
        self._stack.pop()
        if self.host_time:
            span.host_s = time.perf_counter() - span._host_t0
        if span.pinned_duration_s is not None:
            span.end_sim_s = span.start_sim_s + span.pinned_duration_s
        else:
            span.end_sim_s = max(span.start_sim_s, self.now_s)
        span.end_seq = self._seq()
        span._recorder = None

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # -- merging -----------------------------------------------------------------

    def absorb(self, fragment: "TraceRecorder") -> None:
        """Splice a completed *fragment* recorder into this one.

        The trace half of the sharded-execution reducer
        (:mod:`repro.parallel`): a worker records a member's spans and
        events into a fresh fragment recorder; the coordinator absorbs
        fragments in canonical member order. The fragment's recording
        calls are replayed against this recorder's counters in their
        original interleaving (recovered from the fragment's own ``seq``
        numbers), so the result is byte-identical to having made those
        calls inline. Fragment-root spans are re-parented under the span
        currently open here; simulated times are copied verbatim; the
        fragment's metrics registry merges into this one.
        """
        if fragment.open_spans:
            raise ValueError(
                f"cannot absorb fragment with {fragment.open_spans} open span(s)"
            )
        timeline: list[tuple[int, str, TraceSpan | TraceEvent]] = []
        for span in fragment.spans:
            timeline.append((span.seq, "open", span))
            timeline.append((span.end_seq, "close", span))
        for ev in fragment.events:
            timeline.append((ev.seq, "event", ev))
        timeline.sort(key=lambda entry: entry[0])

        ambient = self._stack[-1].span_id if self._stack else None
        id_map: dict[int, TraceSpan] = {}
        for _, kind, item in timeline:
            if kind == "open":
                assert isinstance(item, TraceSpan)
                parent_id = (
                    id_map[item.parent_id].span_id
                    if item.parent_id is not None
                    else ambient
                )
                copied = TraceSpan(
                    span_id=self._next_span_id,
                    parent_id=parent_id,
                    seq=self._seq(),
                    name=item.name,
                    instance=item.instance,
                    start_sim_s=item.start_sim_s,
                    end_sim_s=item.end_sim_s,
                    attrs=dict(item.attrs),
                    pinned_duration_s=item.pinned_duration_s,
                    host_s=item.host_s,
                )
                self._next_span_id += 1
                id_map[item.span_id] = copied
                self.spans.append(copied)
            elif kind == "close":
                assert isinstance(item, TraceSpan)
                id_map[item.span_id].end_seq = self._seq()
            else:
                assert isinstance(item, TraceEvent)
                self.events.append(
                    TraceEvent(
                        seq=self._seq(),
                        time_s=item.time_s,
                        name=item.name,
                        instance=item.instance,
                        attrs=dict(item.attrs),
                    )
                )
        if fragment.now_s > self.now_s:
            self.now_s = fragment.now_s
        if fragment.metrics is not self.metrics:
            self.metrics.merge(fragment.metrics)

    # -- events ------------------------------------------------------------------

    def event(self, name: str, *, instance: str = "", **attrs: object) -> None:
        parent = self._stack[-1] if self._stack else None
        self.events.append(
            TraceEvent(
                seq=self._seq(),
                time_s=self.now_s,
                name=name,
                instance=instance
                or (parent.instance if parent is not None else ""),
                attrs=dict(attrs),
            )
        )

    # -- metrics (forwarded to the registry) ---------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        self.metrics.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.metrics.observe(name, value, **labels)
