"""Deterministic observability: tracing, metrics, profiling.

The control plane reports through the :class:`~repro.common.recording.Recorder`
seam (``core/`` never imports this package); :class:`TraceRecorder` is
the live implementation that keeps simulated-time spans, structured
events and a :class:`MetricsRegistry`, all derived from deterministic
counters so identical seeded runs trace byte-identically. See
``docs/observability.md``.
"""

from repro.common.recording import NULL_RECORDER, NullRecorder, Recorder, Span
from repro.obs.export import jsonl_lines, to_chrome_trace, to_jsonl
from repro.obs.metrics import DEFAULT_BUCKETS, MetricFamily, MetricSample, MetricsRegistry
from repro.obs.profile import ProfileRow, profile, render_profile
from repro.obs.trace import TraceEvent, TraceRecorder, TraceSpan

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricSample",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ProfileRow",
    "Recorder",
    "Span",
    "TraceEvent",
    "TraceRecorder",
    "TraceSpan",
    "jsonl_lines",
    "profile",
    "render_profile",
    "to_chrome_trace",
    "to_jsonl",
]
