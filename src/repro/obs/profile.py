"""Span profiling: self/cumulative attribution over a finished trace.

Aggregates a :class:`~repro.obs.trace.TraceRecorder`'s span tree by span
name: call count, cumulative and *self* simulated time (cumulative minus
the cumulative time of direct children), and — when the recorder ran
with ``host_time=True`` — the same attribution over host seconds. The
rendered table is deterministic whenever host times are absent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import TraceRecorder

__all__ = ["ProfileRow", "profile", "render_profile"]


@dataclass(slots=True)
class ProfileRow:
    """Aggregated profile for one span name."""

    name: str
    count: int
    sim_cum_s: float
    sim_self_s: float
    host_cum_s: float | None = None
    host_self_s: float | None = None


def profile(recorder: TraceRecorder) -> list[ProfileRow]:
    """Per-span-name attribution rows, sorted by cumulative sim time."""
    children_sim: dict[int, float] = {}
    children_host: dict[int, float] = {}
    for span in recorder.spans:
        if span.parent_id is not None:
            children_sim[span.parent_id] = (
                children_sim.get(span.parent_id, 0.0) + span.duration_s
            )
            if span.host_s is not None:
                children_host[span.parent_id] = (
                    children_host.get(span.parent_id, 0.0) + span.host_s
                )

    rows: dict[str, ProfileRow] = {}
    any_host = False
    for span in recorder.spans:
        row = rows.get(span.name)
        if row is None:
            row = ProfileRow(span.name, 0, 0.0, 0.0)
            rows[span.name] = row
        row.count += 1
        row.sim_cum_s += span.duration_s
        # Self time floors at zero: a child with a pinned modelled
        # duration (e.g. a 110 s GPR retrain inside a 300 s window) can
        # legitimately exceed what its parent has left.
        row.sim_self_s += max(
            0.0, span.duration_s - children_sim.get(span.span_id, 0.0)
        )
        if span.host_s is not None:
            any_host = True
            row.host_cum_s = (row.host_cum_s or 0.0) + span.host_s
            row.host_self_s = (row.host_self_s or 0.0) + max(
                0.0, span.host_s - children_host.get(span.span_id, 0.0)
            )
    ordered = sorted(
        rows.values(), key=lambda r: (-r.sim_cum_s, r.name)
    )
    if not any_host:
        for row in ordered:
            row.host_cum_s = None
            row.host_self_s = None
    return ordered


def render_profile(rows: list[ProfileRow]) -> str:
    """Fixed-format text table (host columns only when measured)."""
    host = any(r.host_cum_s is not None for r in rows)
    header = f"{'span':<28s} {'count':>7s} {'sim_cum_s':>12s} {'sim_self_s':>12s}"
    if host:
        header += f" {'host_cum_s':>12s} {'host_self_s':>12s}"
    lines = [header]
    for row in rows:
        line = (
            f"{row.name:<28s} {row.count:>7d} "
            f"{row.sim_cum_s:>12.1f} {row.sim_self_s:>12.1f}"
        )
        if host:
            line += (
                f" {row.host_cum_s or 0.0:>12.4f}"
                f" {row.host_self_s or 0.0:>12.4f}"
            )
        lines.append(line)
    return "\n".join(lines) + "\n"
