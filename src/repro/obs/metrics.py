"""Deterministic metrics registry: counters, gauges, histograms.

The registry absorbs the landscape-level counters that used to live as
scattered attributes (the director's tuning-request list, breaker trip
sums, the TDE's throttle log counts) into one Prometheus-shaped store:
metric *families* keyed by name, each holding samples per label set.
Histograms use **fixed bucket edges** declared up front (or the default
duration edges), so two identical seeded runs produce identical bucket
counts — there is no adaptive binning anywhere.

Rendering to the Prometheus text exposition format lives in
:mod:`repro.cloud.metrics_export` (the repo's scrape-target stand-in);
this module is pure data structure so :mod:`repro.obs.trace` can depend
on it without touching the cloud layer.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

__all__ = ["DEFAULT_BUCKETS", "MetricSample", "MetricFamily", "MetricsRegistry"]

#: Default histogram bucket edges, in simulated seconds — chosen for the
#: durations the control plane actually produces (sub-second adapter
#: retries up to multi-minute GPR retrains). Fixed forever; changing them
#: invalidates golden traces.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

_KINDS = ("counter", "gauge", "histogram")

#: A label set normalised to a hashable, deterministically-ordered key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One exported sample: a flattened (name, labels, value) triple.

    Histogram families flatten into ``name_bucket`` (with an ``le``
    label), ``name_sum`` and ``name_count`` samples, mirroring the
    Prometheus exposition data model so tests can round-trip the text
    format back into samples.
    """

    name: str
    labels: LabelKey
    value: float


@dataclass(slots=True)
class _HistogramState:
    """Cumulative-style histogram: per-bucket counts plus sum/count."""

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)  # last = +Inf overflow

    def observe(self, value: float) -> None:
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.n += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per edge plus the +Inf total, Prometheus-style."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


@dataclass(slots=True)
class MetricFamily:
    """All samples of one metric name, across label sets."""

    name: str
    kind: str
    help: str = ""
    buckets: tuple[float, ...] | None = None
    #: counter/gauge: label key -> float; histogram: label key -> state.
    series: dict[LabelKey, float] = field(default_factory=dict)
    histograms: dict[LabelKey, _HistogramState] = field(default_factory=dict)

    def samples(self) -> Iterator[MetricSample]:
        """Flattened samples in deterministic (label-sorted) order."""
        if self.kind == "histogram":
            for key in sorted(self.histograms):
                state = self.histograms[key]
                edges = [*[_format_le(e) for e in state.edges], "+Inf"]
                for le, cum in zip(edges, state.cumulative()):
                    yield MetricSample(
                        f"{self.name}_bucket",
                        tuple(sorted((*key, ("le", le)))),
                        float(cum),
                    )
                yield MetricSample(f"{self.name}_sum", key, state.total)
                yield MetricSample(f"{self.name}_count", key, float(state.n))
            return
        for key in sorted(self.series):
            yield MetricSample(self.name, key, self.series[key])


def _format_le(edge: float) -> str:
    """Bucket edge as Prometheus renders it (no trailing ``.0`` noise)."""
    return f"{edge:g}"


class MetricsRegistry:
    """Counter/gauge/histogram families, auto-created on first touch.

    Parameters
    ----------
    buckets:
        Per-metric histogram bucket edges overriding
        :data:`DEFAULT_BUCKETS` — must be set before the first
        ``observe`` of that metric (fixed edges are the determinism
        contract).
    """

    def __init__(
        self, buckets: Mapping[str, tuple[float, ...]] | None = None
    ) -> None:
        self.families: dict[str, MetricFamily] = {}
        self._bucket_overrides = dict(buckets) if buckets else {}

    # -- declaration -------------------------------------------------------------

    def describe(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        """Declare a family up front (help text, custom bucket edges)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; pick from {_KINDS}")
        family = self.families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help_text:
                family.help = help_text
            return family
        resolved = buckets if buckets is not None else (
            self._bucket_overrides.get(name, DEFAULT_BUCKETS)
            if kind == "histogram"
            else None
        )
        if resolved is not None:
            if list(resolved) != sorted(resolved) or len(set(resolved)) != len(
                resolved
            ):
                raise ValueError(f"bucket edges must strictly increase: {resolved}")
        family = MetricFamily(name, kind, help_text, resolved)
        self.families[name] = family
        return family

    def _family(self, name: str, kind: str) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            return self.describe(name, kind)
        if family.kind != kind:
            raise ValueError(f"metric {name!r} is a {family.kind}, not a {kind}")
        return family

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        family = self._family(name, "counter")
        key = _label_key(labels)
        family.series[key] = family.series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        family = self._family(name, "gauge")
        family.series[_label_key(labels)] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        family = self._family(name, "histogram")
        key = _label_key(labels)
        state = family.histograms.get(key)
        if state is None:
            assert family.buckets is not None
            state = _HistogramState(family.buckets)
            family.histograms[key] = state
        state.observe(value)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s samples into this registry, in place.

        The order-stable reducer behind sharded fleet execution
        (:mod:`repro.parallel`): counters add, histograms add bucket-wise
        (edges must agree), gauges take *other*'s value (last write wins,
        so callers must merge fragments in canonical member order — the
        same convention a serial run follows). Kind and bucket-edge
        conflicts raise rather than silently coerce.
        """
        if other is self:
            raise ValueError("cannot merge a registry into itself")
        for name in sorted(other.families):
            theirs = other.families[name]
            family = self.describe(name, theirs.kind, theirs.help, theirs.buckets)
            if family.buckets != theirs.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket edges differ: "
                    f"{family.buckets} != {theirs.buckets}"
                )
            if theirs.kind == "histogram":
                for key in sorted(theirs.histograms):
                    state = theirs.histograms[key]
                    mine = family.histograms.get(key)
                    if mine is None:
                        mine = _HistogramState(family.buckets or DEFAULT_BUCKETS)
                        family.histograms[key] = mine
                    for i, count in enumerate(state.counts):
                        mine.counts[i] += count
                    mine.total += state.total
                    mine.n += state.n
            elif theirs.kind == "counter":
                for key in sorted(theirs.series):
                    family.series[key] = family.series.get(key, 0.0) + theirs.series[key]
            else:  # gauge
                for key in sorted(theirs.series):
                    family.series[key] = theirs.series[key]

    # -- inspection --------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current counter/gauge value (0.0 for a never-touched label set)."""
        family = self.families.get(name)
        if family is None or family.kind == "histogram":
            return 0.0
        return family.series.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[MetricSample]:
        """Every flattened sample, families in name order."""
        for name in sorted(self.families):
            yield from self.families[name].samples()
