"""Deterministic trace exports: JSONL and Chrome trace-event format.

The JSONL export is the golden-trace substrate: one compact JSON object
per line — a ``meta`` header, then spans and events merged in sequence
order, then the final metrics registry flattened sample by sample. Keys
are sorted and floats go through ``json``'s ``repr``-based formatting,
so identical runs serialise byte-identically. Host times never appear.

The Chrome export produces the ``chrome://tracing`` / Perfetto JSON
event format: complete (``"X"``) events for spans with simulated time
mapped to microseconds, instant (``"i"``) events for trace events, and
metadata (``"M"``) events naming one thread row per instance.
"""

from __future__ import annotations

import json
from collections.abc import Iterator

from repro.obs.trace import TraceRecorder

__all__ = ["jsonl_lines", "to_jsonl", "to_chrome_trace"]

#: Bumped whenever the JSONL schema changes; golden digests pin it.
FORMAT_VERSION = 1


def _dump(record: dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def jsonl_lines(
    recorder: TraceRecorder, meta: dict[str, object] | None = None
) -> Iterator[str]:
    """Yield the trace's JSONL lines (no trailing newlines)."""
    if recorder.open_spans:
        raise ValueError(f"{recorder.open_spans} span(s) still open")
    header: dict[str, object] = {"type": "meta", "format": FORMAT_VERSION}
    if meta:
        header.update(meta)
    yield _dump(header)

    records: list[tuple[int, dict[str, object]]] = []
    for span in recorder.spans:
        records.append(
            (
                span.seq,
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "seq": span.seq,
                    "end_seq": span.end_seq,
                    "name": span.name,
                    "instance": span.instance,
                    "start_s": span.start_sim_s,
                    "end_s": span.end_sim_s,
                    "attrs": _clean_attrs(span.attrs),
                },
            )
        )
    for ev in recorder.events:
        records.append(
            (
                ev.seq,
                {
                    "type": "event",
                    "seq": ev.seq,
                    "name": ev.name,
                    "instance": ev.instance,
                    "time_s": ev.time_s,
                    "attrs": _clean_attrs(ev.attrs),
                },
            )
        )
    records.sort(key=lambda pair: pair[0])
    for _, record in records:
        yield _dump(record)

    for sample in recorder.metrics.samples():
        yield _dump(
            {
                "type": "metric",
                "name": sample.name,
                "labels": dict(sample.labels),
                "value": sample.value,
            }
        )


def _clean_attrs(attrs: dict[str, object]) -> dict[str, object]:
    """Attributes coerced to JSON-stable primitives."""
    out: dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        elif isinstance(value, (tuple, list)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = str(value)
    return out


def to_jsonl(
    recorder: TraceRecorder, meta: dict[str, object] | None = None
) -> str:
    """The whole trace as one JSONL string (trailing newline included)."""
    return "\n".join(jsonl_lines(recorder, meta)) + "\n"


def to_chrome_trace(
    recorder: TraceRecorder, meta: dict[str, object] | None = None
) -> str:
    """The trace in Chrome trace-event JSON (open in Perfetto).

    Simulated seconds map to trace microseconds; each instance gets its
    own thread row (tid), landscape-level spans land on tid 0.
    """
    if recorder.open_spans:
        raise ValueError(f"{recorder.open_spans} span(s) still open")
    instances = sorted(
        {s.instance for s in recorder.spans if s.instance}
        | {e.instance for e in recorder.events if e.instance}
    )
    tids = {instance: i + 1 for i, instance in enumerate(instances)}
    events: list[dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "landscape"},
        }
    ]
    for instance in instances:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tids[instance],
                "name": "thread_name",
                "args": {"name": instance},
            }
        )
    for span in recorder.spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tids.get(span.instance, 0),
                "name": span.name,
                "ts": span.start_sim_s * 1e6,
                "dur": span.duration_s * 1e6,
                "args": _clean_attrs(span.attrs),
            }
        )
    for ev in recorder.events:
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": tids.get(ev.instance, 0),
                "name": ev.name,
                "ts": ev.time_s * 1e6,
                "s": "t",
                "args": _clean_attrs(ev.attrs),
            }
        )
    payload: dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        payload["metadata"] = meta
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
