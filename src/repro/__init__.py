"""repro — a reproduction of AutoDBaaS (EDBT 2021).

An autonomous tuning service for relational database services on PaaS:
a Throttling Detection Engine deciding *when* databases need tuning,
OtterTune-style and CDBTune-style tuner instances behind a load-balanced
config director, and a disruption-aware apply pipeline — all running
against a simulated PostgreSQL/MySQL substrate.

Quick start::

    from repro import AutoDBaaS
    from repro.cloud import Provisioner
    from repro.dbsim import postgres_catalog
    from repro.tuners import OtterTuneTuner, WorkloadRepository
    from repro.workloads import TPCCWorkload

    repo = WorkloadRepository()
    service = AutoDBaaS([OtterTuneTuner(postgres_catalog(), repo)], repo)
    deployment = Provisioner().provision(plan="m4.large", flavor="postgres")
    service.attach(deployment, TPCCWorkload(), policy="tde")
    outcomes = service.step(60.0)
"""

from repro.core.service import AutoDBaaS, ManagedInstance, StepOutcome

__version__ = "1.0.0"

__all__ = ["AutoDBaaS", "ManagedInstance", "StepOutcome", "__version__"]
