#!/usr/bin/env python
"""Measure line coverage of ``src/repro`` without coverage.py.

CI runs the real coverage gate via pytest-cov; this tool exists so the
``--cov-fail-under`` baseline can be (re)measured in environments where
coverage.py isn't installed — it uses the stdlib :mod:`sys.monitoring`
API (PEP 669, Python >= 3.12) to record executed lines while driving
the tier-1 pytest suite in-process.

Usage::

    PYTHONPATH=src python tools/coverage_baseline.py [pytest args...]

Prints per-module and total line coverage. The numbers are close to,
but not identical with, coverage.py's (no branch analysis, and
``co_lines`` denominators differ slightly from coverage.py's arc
parser) — treat the total as a floor-setting estimate, then keep the CI
gate a few points below it for slack.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def main(argv: list[str]) -> int:
    import pytest

    executed: dict[str, set[int]] = defaultdict(set)
    prefix = str(SRC / "repro")

    if sys.version_info >= (3, 12):
        exit_code = _run_monitored(pytest, argv, executed, prefix)
    else:
        # Pre-3.12 fallback: sys.settrace. Much slower (it fires for
        # every frame, not just instrumented code), but line-accurate.
        exit_code = _run_traced(pytest, argv, executed, prefix)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage numbers unreliable", file=sys.stderr)
        return int(exit_code)

    total_lines = 0
    total_hit = 0
    rows: list[tuple[str, int, int]] = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        lines = _measurable_lines(path)
        if not lines:
            continue
        hit = len(executed.get(str(path), set()) & lines)
        rows.append((str(path.relative_to(SRC)), hit, len(lines)))
        total_hit += hit
        total_lines += len(lines)

    width = max(len(name) for name, _, _ in rows)
    for name, hit, count in rows:
        print(f"{name:<{width}}  {hit:>5}/{count:<5}  {100.0 * hit / count:6.1f}%")
    pct = 100.0 * total_hit / total_lines if total_lines else 0.0
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_lines:<5}  {pct:6.1f}%")
    return 0


def _run_monitored(pytest, argv, executed, prefix) -> int:
    mon = sys.monitoring
    tool_id = mon.COVERAGE_ID

    def on_line(code, line_number):
        filename = code.co_filename
        if filename.startswith(prefix):
            executed[filename].add(line_number)
            return None
        return mon.DISABLE

    mon.use_tool_id(tool_id, "coverage_baseline")
    mon.register_callback(tool_id, mon.events.LINE, on_line)
    mon.set_events(tool_id, mon.events.LINE)
    try:
        return int(pytest.main(["-x", "-q", *(argv or ["tests"])]))
    finally:
        mon.set_events(tool_id, 0)
        mon.register_callback(tool_id, mon.events.LINE, None)
        mon.free_tool_id(tool_id)


def _run_traced(pytest, argv, executed, prefix) -> int:
    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            executed[filename].add(frame.f_lineno)
        return tracer

    sys.settrace(tracer)
    try:
        return int(pytest.main(["-x", "-q", *(argv or ["tests"])]))
    finally:
        sys.settrace(None)


def _measurable_lines(path: Path) -> set[int]:
    """Executable line numbers of *path* per its compiled code objects."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # Module docstrings / future imports compile to line 0 sentinels.
    lines.discard(0)
    return lines


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
